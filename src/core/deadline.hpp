#pragma once
// Solve-lifecycle primitives: deadlines and cooperative cancellation
// (DESIGN.md §11).
//
// A serving deployment must be able to *bound* a solve (wall-clock or
// PRAM-work budget) and to *abort* one that is no longer wanted. Both are
// cooperative: the solver polls its context's Lifecycle at natural loop
// boundaries (IPM outer iterations, CG inner iterations, expander rebuilds,
// baseline augmentation loops) and winds down with a typed status —
// SolveStatus::kDeadlineExceeded or kCanceled — leaving the SolverContext
// reusable. These statuses are *instance-independent*: the degradation
// cascade stops on them instead of retrying a lower tier, and certification
// is skipped (there is no answer to certify).
//
// The disarmed path costs one branch (`armed_` is set once at configuration
// time), so production solves without deadlines pay nothing for the polls
// compiled into the hot loops. Deep call sites whose interface has no status
// channel use `throw_if_expired`, which surfaces the condition as a
// ComponentError the tier drivers already convert back to a status.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "core/exec_bindings.hpp"
#include "core/solve_status.hpp"
#include "parallel/work_depth.hpp"

namespace pmcf::core {

/// Thread-safe cancellation flag shared between a caller and an in-flight
/// solve. The caller keeps the token alive for the solve's duration (the
/// Engine registry does this for handle-based cancellation) and may cancel
/// from any thread; the solve observes it at its next lifecycle poll.
class CancelToken {
 public:
  void cancel() noexcept { canceled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool canceled() const noexcept {
    return canceled_.load(std::memory_order_acquire);
  }
  void reset() noexcept { canceled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> canceled_{false};
};

/// Per-solve budget. Either bound may be left open; an all-open Deadline is
/// free to check. The work budget is expressed in PRAM work units and is
/// therefore *deterministic* — the same instance exceeds it at the same
/// iteration on every run — but only binds in instrumented mode (wall-clock
/// trackers charge nothing). The wall bound binds in both modes.
struct Deadline {
  using Clock = std::chrono::steady_clock;

  Clock::time_point wall = Clock::time_point::max();  ///< open when max()
  std::uint64_t work = 0;                             ///< PRAM budget; 0 = open

  [[nodiscard]] static Deadline unlimited() { return {}; }
  /// Wall-clock deadline `d` from now.
  [[nodiscard]] static Deadline in(Clock::duration d) {
    Deadline dl;
    dl.wall = Clock::now() + d;
    return dl;
  }
  [[nodiscard]] static Deadline at(Clock::time_point t) {
    Deadline dl;
    dl.wall = t;
    return dl;
  }
  /// PRAM-work budget (deterministic; instrumented mode only).
  [[nodiscard]] static Deadline work_budget(std::uint64_t units) {
    Deadline dl;
    dl.work = units;
    return dl;
  }

  [[nodiscard]] bool open() const {
    return wall == Clock::time_point::max() && work == 0;
  }
};

/// The per-solve lifecycle state owned by a SolverContext: at most two bound
/// cancel tokens (a caller-owned one and the Engine's handle-registry one)
/// plus the solve's Deadline. Configured before the solve starts and read
/// cooperatively from the solve's own threads; reconfiguration while a solve
/// is in flight is not supported (matching the context's single-solve
/// contract).
class Lifecycle {
 public:
  /// Replace the deadline (and re-arm / disarm the fast path).
  void set_deadline(const Deadline& d) {
    deadline_ = d;
    rearm();
  }
  /// Bind a token (up to 2; further binds replace the second slot).
  void bind_token(const CancelToken* token) {
    if (tokens_[0] == nullptr || tokens_[0] == token) {
      tokens_[0] = token;
    } else {
      tokens_[1] = token;
    }
    rearm();
  }
  /// Forget tokens and deadline: the context can host a fresh solve.
  void clear() {
    tokens_[0] = tokens_[1] = nullptr;
    deadline_ = Deadline::unlimited();
    forced_ = false;
    armed_ = false;
  }
  /// Latch a cancellation that did not come through a token (the
  /// kCancelRequest fault-injection point). Cleared by clear().
  void force_cancel() {
    forced_ = true;
    armed_ = true;
  }

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] const Deadline& deadline() const { return deadline_; }

  /// The cooperative check. `tracker` supplies the PRAM work counter for the
  /// work budget (pass the context's tracker; ignored when disabled).
  /// Returns kOk, kCanceled, or kDeadlineExceeded. One branch when disarmed.
  [[nodiscard]] SolveStatus poll(const par::Tracker& tracker) const {
    if (!armed_) return SolveStatus::kOk;
    return poll_slow(tracker);
  }

 private:
  [[nodiscard]] SolveStatus poll_slow(const par::Tracker& tracker) const;
  void rearm() {
    armed_ = forced_ || tokens_[0] != nullptr || tokens_[1] != nullptr || !deadline_.open();
  }

  const CancelToken* tokens_[2] = {nullptr, nullptr};
  Deadline deadline_{};
  bool forced_ = false;
  bool armed_ = false;
};

/// Poll the calling thread's bound lifecycle (the active SolverContext's via
/// ContextScope / pool-task propagation). kOk when no context is installed —
/// the default context never carries a deadline. Used by layers that have no
/// context parameter (the combinatorial baselines).
[[nodiscard]] SolveStatus poll_lifecycle();

/// Throwing twin for deep call sites with no status channel: raises
/// ComponentError(status, component, ...) when the bound lifecycle has
/// expired or been canceled. Tier drivers convert it back to a status.
void throw_if_expired(const char* component);

}  // namespace pmcf::core
