#pragma once
// Per-thread execution bindings: which tracker / fault injector / recovery
// log / thread pool the free-function instrumentation layer resolves to.
//
// A SolverContext (core/solver_context.hpp) bundles one of each and installs
// them here for the duration of a solve (ContextScope), making concurrent
// solves on different threads fully isolated: `par::charge`,
// `FaultInjector::should_fire` and `note_recovery` all consult the current
// bindings before falling back to the process-wide default context. The
// thread pool propagates the forking thread's bindings into every task it
// runs (thread_pool.cpp), so wall-clock fork-join regions inherit their
// solve's context on worker threads.
//
// This header is dependency-free (forward declarations only) so the lowest
// layers (parallel/) can consult the bindings without an include cycle with
// core/solver_context.hpp.

namespace pmcf {
class RecoveryLog;
namespace par {
class Tracker;
class FaultInjector;
class ThreadPool;
}  // namespace par
}  // namespace pmcf

namespace pmcf::core {

class Lifecycle;

/// The per-thread slots. Null members mean "fall back to the default
/// context's instance"; `pool_bound` distinguishes a context bound to no pool
/// (run sequentially) from one that defers to `ThreadPool::global()`. The
/// lifecycle slot has no default-context fallback — a null lifecycle simply
/// means no deadline/cancellation is in force.
struct ExecBindings {
  par::Tracker* tracker = nullptr;
  par::FaultInjector* injector = nullptr;
  RecoveryLog* recovery = nullptr;
  par::ThreadPool* pool = nullptr;
  Lifecycle* lifecycle = nullptr;
  bool pool_bound = false;
};

/// The calling thread's current bindings (all-null when no context is
/// installed).
[[nodiscard]] const ExecBindings& current_bindings();

/// Install `next` and return the previous bindings (for scoped restore).
ExecBindings exchange_bindings(const ExecBindings& next);

/// RAII install/restore of a bindings set on the current thread.
class BindingsScope {
 public:
  explicit BindingsScope(const ExecBindings& b) : prev_(exchange_bindings(b)) {}
  ~BindingsScope() { exchange_bindings(prev_); }

  BindingsScope(const BindingsScope&) = delete;
  BindingsScope& operator=(const BindingsScope&) = delete;

 private:
  ExecBindings prev_;
};

}  // namespace pmcf::core
