#include "core/exec_bindings.hpp"

namespace pmcf::core {

namespace {
thread_local ExecBindings tls_bindings;
}  // namespace

const ExecBindings& current_bindings() { return tls_bindings; }

ExecBindings exchange_bindings(const ExecBindings& next) {
  ExecBindings prev = tls_bindings;
  tls_bindings = next;
  return prev;
}

}  // namespace pmcf::core
