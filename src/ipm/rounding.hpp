#pragma once
// Exact rounding of the IPM's near-optimal fractional flow (Section 2.2:
// "the optimal solution is guaranteed to be integral, so we can round").
//
// Pipeline: round x entrywise to integers, restore A^T x = b by routing the
// (small) imbalance through the residual graph with successive shortest
// paths, then cancel any remaining negative residual cycles. The result is
// an exactly optimal integral b-flow regardless of how crude the fractional
// input was — the input quality only controls how much repair work is done
// (reported, and benchmarked in bench_table1_mincostflow).

#include <cstdint>
#include <vector>

#include "core/solve_status.hpp"
#include "core/solver_context.hpp"
#include "graph/digraph.hpp"
#include "linalg/kernels.hpp"

namespace pmcf::ipm {

struct RoundRepairResult {
  std::vector<std::int64_t> flow;  ///< per arc, integral, 0 <= f <= u
  std::int64_t cost = 0;
  std::int64_t imbalance_routed = 0;   ///< L1 imbalance after entry rounding
  std::int64_t cycles_canceled = 0;    ///< negative-cycle repairs
  bool feasible = false;
  /// kOk when the repaired flow satisfies A^T x = b; kInfeasible when the
  /// imbalance could not be routed (no feasible b-flow exists). Non-finite
  /// fractional entries are sanitized to 0 before rounding, so a NaN-ridden
  /// IPM iterate still yields a correct (if slow) repair, never UB.
  SolveStatus status = SolveStatus::kOk;
};

/// Round `x_frac` to the exact optimal integral solution of
/// min c^T x, A^T x = b, 0 <= x <= u (data taken from g; b over all rows).
/// PRAM work/depth for the repair is charged against `ctx`'s tracker.
RoundRepairResult round_and_repair(core::SolverContext& ctx, const graph::Digraph& g,
                                   const std::vector<std::int64_t>& b,
                                   const linalg::Vec& x_frac);

}  // namespace pmcf::ipm
