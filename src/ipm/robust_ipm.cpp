#include "ipm/robust_ipm.hpp"

#include <algorithm>
#include <cmath>

#include "ds/dual_maintenance.hpp"
#include "ds/gradient_maintenance.hpp"
#include "ds/heavy_sampler.hpp"
#include "ds/lewis_maintenance.hpp"
#include "ipm/barrier.hpp"
#include "linalg/accel_cache.hpp"
#include "linalg/csr.hpp"
#include "linalg/kernels.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lewis.hpp"
#include "parallel/scheduler.hpp"

namespace pmcf::ipm {

namespace {

using linalg::Vec;

/// One exact damped Newton centering step at fixed mu (the resync repair;
/// identical math to reference_ipm's inner step). Uses the resilient solve
/// ladder; returns a non-Ok status when even the dense fallback failed or
/// the step direction is non-finite.
SolveStatus exact_center_step(core::SolverContext& ctx, const IpmLp& lp,
                              const linalg::IncidenceOp& a, Vec& x, Vec& y, double mu,
                              const Vec& tau, const linalg::SolveOptions& solve,
                              double damping, RobustIpmResult& stats) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const Vec hess = barrier_hess(x, lp.cap);
  const Vec grad = barrier_grad(x, lp.cap);
  const Vec s = linalg::sub(lp.cost, a.apply(y));
  Vec rp = linalg::sub(lp.b, a.apply_transpose(x));
  rp[static_cast<std::size_t>(a.dropped())] = 0.0;

  Vec d(m), resid(m);
  par::parallel_for(0, m, [&](std::size_t i) {
    d[i] = 1.0 / (mu * tau[i] * hess[i]);
    resid[i] = s[i] + mu * tau[i] * grad[i];
  });
  Vec dresid(m);
  linalg::mul_into(d, resid, dresid);
  Vec rhs(n);
  a.apply_transpose_into(dresid, rhs);
  par::parallel_for(0, n, [&](std::size_t i) { rhs[i] = -rp[i] - rhs[i]; });
  rhs[static_cast<std::size_t>(a.dropped())] = 0.0;
  const double dmax = linalg::norm_inf(d);
  Vec dn(m), rhsn(n);
  linalg::scale_into(d, 1.0 / dmax, dn);
  linalg::scale_into(rhs, 1.0 / dmax, rhsn);
  // Shares the Newton acceleration slot with reference_ipm: fixed-pattern
  // value refresh, drift-gated incomplete-Cholesky, warm-started direction.
  linalg::AccelCache& cache = linalg::accel_cache(ctx);
  const linalg::Csr& lap = cache.laplacian(ctx, a.graph(), dn, a.dropped());
  const linalg::SddPreconditioner& precond =
      cache.preconditioner(ctx, linalg::AccelSite::kNewton, lap, dn);
  linalg::Vec& warm_dy = cache.warm_start(linalg::AccelSite::kNewton, 0, n);
  linalg::ResilientSolveOptions rso = linalg::ladder_options(ctx);
  rso.base = solve;
  auto sol = linalg::solve_sdd_resilient(ctx, lap, rhsn, rso, &precond, &warm_dy);
  stats.dense_fallbacks += sol.used_dense_fallback ? 1 : 0;
  if (sol.status != SolveStatus::kOk)
    return is_lifecycle_error(sol.status) ? sol.status : SolveStatus::kNumericalFailure;
  sol.x[static_cast<std::size_t>(a.dropped())] = 0.0;
  warm_dy = sol.x;  // seed the next centering solve
  const Vec a_dy = a.apply(sol.x);
  Vec dx(m);
  par::parallel_for(0, m, [&](std::size_t i) { dx[i] = -d[i] * (resid[i] + a_dy[i]); });
  double alpha = 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    if (dx[i] < 0.0) {
      alpha = std::min(alpha, damping * x[i] / -dx[i]);
    } else if (dx[i] > 0.0) {
      alpha = std::min(alpha, damping * (lp.cap[i] - x[i]) / dx[i]);
    }
  }
  if (!std::isfinite(alpha)) return SolveStatus::kNumericalFailure;
  par::parallel_for(0, m, [&](std::size_t i) { x[i] += alpha * dx[i]; });
  par::parallel_for(0, n, [&](std::size_t i) { y[i] -= alpha * sol.x[i]; });
  y[static_cast<std::size_t>(a.dropped())] = 0.0;
  return SolveStatus::kOk;
}

double centrality_of(const IpmLp& lp, const linalg::IncidenceOp& a, const Vec& x, const Vec& y,
                     double mu, const Vec& tau) {
  const Vec hess = barrier_hess(x, lp.cap);
  const Vec grad = barrier_grad(x, lp.cap);
  const Vec s = linalg::sub(lp.cost, a.apply(y));
  double c = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    c = std::max(c, std::abs((s[i] + mu * tau[i] * grad[i]) / (mu * tau[i] * std::sqrt(hess[i]))));
  par::charge(x.size(), par::ceil_log2(std::max<std::size_t>(x.size(), 2)));
  return c;
}

}  // namespace

RobustIpmResult robust_ipm(core::SolverContext& ctx, const IpmLp& lp, Vec x0, Vec y0,
                           double mu0, const RobustIpmOptions& opts) {
  const graph::Digraph& g = *lp.graph;
  const linalg::IncidenceOp a(g, lp.dropped);
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  par::Rng rng(opts.seed);

  RobustIpmResult res;
  res.x = std::move(x0);
  res.y = std::move(y0);
  res.mu = mu0;

  // Step strategy + epoch sketch config: sentinel fields resolve against the
  // installed preset (under "default" these are exactly the historical
  // constants).
  const core::IpmStepIngredient& stp = ctx.ingredients().step;
  const core::SketchIngredient& skt = ctx.ingredients().sketch;
  const double step_fraction = core::resolved(opts.step_fraction, stp.rob_step_fraction);
  const double gamma = core::resolved(opts.gamma, stp.rob_gamma);
  const double bucket_eps = core::resolved(opts.bucket_eps, stp.rob_bucket_eps);
  const double dual_eps = core::resolved(opts.dual_eps, stp.rob_dual_eps);
  const double primal_eps = core::resolved(opts.primal_eps, stp.rob_primal_eps);

  const std::int32_t resync_every =
      opts.resync_every > 0
          ? opts.resync_every
          : static_cast<std::int32_t>(stp.rob_resync_multiplier *
                                      std::ceil(std::sqrt(static_cast<double>(n))));

  // Exact Lewis weights at epoch boundaries; kept as the epoch's τ reference.
  linalg::LewisOptions lw;
  lw.max_rounds = skt.robust_epoch_lewis_rounds;
  lw.leverage.sketch_dim = skt.robust_epoch_sketch_dim;
  Vec tau(m, static_cast<double>(n) / static_cast<double>(m) + 0.5);

  std::uint64_t sparsifier_edge_sum = 0;
  std::uint64_t sparsifier_solves = 0;

  // Recovery state: a ComponentError thrown by any randomized structure
  // (expander certificate violation, sketch failure) aborts the epoch; the
  // structures are rebuilt from the exact iterate with fresh seeds a bounded
  // number of times before the failure surfaces as a typed status.
  std::uint64_t seed_shift = 0;
  std::int32_t failed_epochs = 0;

  while (res.iterations < opts.max_iters) {
    // Lifecycle poll at epoch granularity (the robust-step loop below polls
    // per step as well); a canceled/expired solve winds down with the typed
    // status, never a partial kOk.
    if (const SolveStatus ls = ctx.check_lifecycle(); ls != SolveStatus::kOk) {
      res.status = ls;
      res.detail = "ipm::robust_ipm: solve lifecycle expired";
      return res;
    }
    try {
      // ---------------- epoch resync (exact, amortized over resync_every) ----
      ++res.resyncs;
      {
        const Vec hess = barrier_hess(res.x, lp.cap);
        const Vec v = linalg::map(hess, [](double h) { return 1.0 / std::sqrt(h); });
        tau = linalg::ipm_lewis_weights(ctx, a, v, rng, lw);
      }
      // Re-center until the iterate is genuinely close to the path again; the
      // robust steps in between only keep it coarsely centered.
      for (std::int32_t c = 0; c < stp.rob_recenter_max; ++c) {
        res.final_centrality = centrality_of(lp, a, res.x, res.y, res.mu, tau);
        if (res.final_centrality < stp.rob_recenter_threshold) break;
        const SolveStatus st = exact_center_step(ctx, lp, a, res.x, res.y, res.mu, tau,
                                                 opts.solve, stp.rob_center_damping, res);
        if (st != SolveStatus::kOk) {
          res.status = is_lifecycle_error(st) ? st : SolveStatus::kNumericalFailure;
          res.detail = is_lifecycle_error(st)
                           ? "ipm::robust_ipm: solve lifecycle expired during re-centering"
                           : "ipm::robust_ipm: exact re-centering step failed";
          return res;
        }
      }
      if (res.mu <= opts.mu_end && res.final_centrality < 1.0) {
        res.converged = true;
        break;
      }

      // ---------------- build the robust structures for this epoch ----------
      Vec hess = barrier_hess(res.x, lp.cap);
      Vec grad = barrier_grad(res.x, lp.cap);
      Vec g_primal(m);  // Φ''^{-1/2}
      par::parallel_for(0, m, [&](std::size_t i) { g_primal[i] = 1.0 / std::sqrt(hess[i]); });
      Vec s_exact = linalg::sub(lp.cost, a.apply(res.y));

      // z̄ centrality coordinates (clamped to the bucketing range).
      ds::GradientOptions gopts;
      gopts.eps = bucket_eps;
      gopts.c_norm = 4.0 * std::log(4.0 * static_cast<double>(m) / static_cast<double>(n) + 2.72);
      auto z_of = [&](std::size_t i, double s_i, double x_i, double tau_i, double mu) {
        const double h2 = 1.0 / x_i / x_i + 1.0 / (lp.cap[i] - x_i) / (lp.cap[i] - x_i);
        const double gr = -1.0 / x_i + 1.0 / (lp.cap[i] - x_i);
        const double z = (s_i + mu * tau_i * gr) / (mu * tau_i * std::sqrt(h2));
        return std::clamp(z, -gopts.z_max, gopts.z_max);
      };
      Vec z_bar(m);
      for (std::size_t i = 0; i < m; ++i)
        z_bar[i] = z_of(i, s_exact[i], res.x[i], tau[i], res.mu);

      // Primal accuracy budget: fraction of the distance to the walls.
      Vec accuracy(m);
      for (std::size_t i = 0; i < m; ++i)
        accuracy[i] = primal_eps * std::min(res.x[i], lp.cap[i] - res.x[i]);

      ds::PrimalGradientMaintenance pg(a, res.x, g_primal, tau, z_bar, accuracy, gopts);

      ds::DualMaintenanceOptions dopts;
      dopts.eps = dual_eps;
      dopts.hh.decomp.static_opts.power_iters = 24;
      dopts.hh.seed += seed_shift;
      Vec dual_weights(m);
      for (std::size_t i = 0; i < m; ++i)
        dual_weights[i] = res.mu * tau[i] * std::sqrt(hess[i]);
      ds::DualMaintenance dual(ctx, g, s_exact, dual_weights, dopts);

      ds::LewisMaintenanceOptions lmo;
      lmo.leverage.leverage.sketch_dim = skt.lewis_maint_sketch_dim;
      lmo.leverage.seed = opts.seed + 101 + seed_shift;
      ds::LewisMaintenance lewis(ctx, a, g_primal,
                                 linalg::constant(m, static_cast<double>(n) / m), lmo);

      // Sparsifier sampling + primal sampler share the weights (τ Φ'')^{-1}.
      Vec d_weights(m);
      for (std::size_t i = 0; i < m; ++i) d_weights[i] = 1.0 / (tau[i] * hess[i]);
      Vec d_sqrt = linalg::sqrt(d_weights);
      ds::HeavyHitterOptions hh_opts;
      hh_opts.seed = opts.seed + 202 + seed_shift;
      hh_opts.decomp.static_opts.power_iters = 24;
      ds::HeavyHitter hh_sparse(ctx, g, d_sqrt, hh_opts);
      ds::HeavySamplerOptions hs_opts;
      hs_opts.seed = opts.seed + 303 + seed_shift;
      ds::HeavySampler sampler(ctx, g, d_weights, tau, hs_opts);

      // Mirror of x̄ for incremental residual updates.
      Vec x_mirror = res.x;
      Vec rp = linalg::sub(lp.b, a.apply_transpose(res.x));
      rp[static_cast<std::size_t>(a.dropped())] = 0.0;
      double tau_sum = linalg::sum(tau);
      Vec tau_cur = tau;

      std::vector<std::size_t> stale;  // coordinates whose z̄ needs refresh

      // ---------------- robust steps ----------------------------------------
      for (std::int32_t step = 0; step < resync_every && res.iterations < opts.max_iters; ++step) {
        if (const SolveStatus ls = ctx.check_lifecycle(); ls != SolveStatus::kOk) {
          res.status = ls;
          res.detail = "ipm::robust_ipm: solve lifecycle expired mid-epoch";
          return res;
        }
        ++res.iterations;
        ++res.robust_steps;
        const par::CostScope step_scope;

        // 1. Refresh z̄ and the bucket assignment of stale coordinates.
        if (!stale.empty()) {
          std::sort(stale.begin(), stale.end());
          stale.erase(std::unique(stale.begin(), stale.end()), stale.end());
          Vec b(stale.size()), c(stale.size()), dnew(stale.size());
          for (std::size_t k = 0; k < stale.size(); ++k) {
            const std::size_t i = stale[k];
            const double xi = x_mirror[i];
            const double h2 = 1.0 / xi / xi + 1.0 / (lp.cap[i] - xi) / (lp.cap[i] - xi);
            b[k] = 1.0 / std::sqrt(h2);
            c[k] = tau_cur[i];
            dnew[k] = z_of(i, dual.approx()[i], xi, tau_cur[i], res.mu);
          }
          pg.update(stale, b, c, dnew);
          stale.clear();
        }

        // 2. Steepest descent direction over buckets (eq. (4)).
        const Vec v1 = pg.query_product();  // A^T G ∇Ψ(z̄)^♭(τ̄)

        // 3. Sparsified Newton solves: H ≈ A^T T̄^{-1} Φ''^{-1} A from
        //    leverage-sampled edges (Lemma B.1 LeverageScoreSample).
        //    Heavy-hitter false negatives can leave the sample too thin to
        //    span a connected sparsifier; redraw with widened oversampling,
        //    then fall back to the dense edge set rather than solve a
        //    near-singular system.
        double k_prime = opts.sparsifier_k;
        auto sampled = hh_sparse.leverage_sample(k_prime);
        for (std::int32_t redraw = 0;
             sampled.size() + 1 < n && redraw < opts.max_sparsifier_retries; ++redraw) {
          ++res.sparsifier_retries;
          ctx.recovery().note(RecoveryEvent::kSketchRetry);
          k_prime *= 4.0;
          sampled = hh_sparse.leverage_sample(k_prime);
        }
        Vec d_sparse(m, 0.0);
        if (sampled.size() + 1 < n) {
          ++res.dense_fallbacks;
          ctx.recovery().note(RecoveryEvent::kDenseFallback);
          d_sparse = d_weights;
          sparsifier_edge_sum += m;
        } else {
          const Vec qs = hh_sparse.leverage_bound(sampled, k_prime);
          sparsifier_edge_sum += sampled.size();
          for (std::size_t k = 0; k < sampled.size(); ++k)
            d_sparse[sampled[k]] = d_weights[sampled[k]] / std::max(qs[k], 1e-12);
        }
        ++sparsifier_solves;
        const double dmax = std::max(linalg::norm_inf(d_sparse), 1e-300);
        const Vec d_scaled = linalg::scale(d_sparse, 1.0 / dmax);
        // Cached assembly (value-only refresh of the epoch-stable pattern).
        // The sparsifier resamples its edge support every step, so the
        // weight vector changes wholesale — the drift gate correctly
        // refactors the (cheap, Jacobi) preconditioner nearly every step,
        // while the two RHS of this step share one blocked CG: the δy
        // steepest-descent system and its feasibility-corrected twin q
        // solve against the same sparsified Laplacian.
        linalg::AccelCache& cache = linalg::accel_cache(ctx);
        const linalg::Csr& lap = cache.laplacian(ctx, g, d_scaled, a.dropped());
        const linalg::SddPreconditioner& precond =
            cache.preconditioner(ctx, linalg::AccelSite::kRobustStep, lap, d_scaled);

        //    δy = H^{-1} A^T Φ''^{-1/2} g  with g = -γ ∇Ψ^♭  (dual step)
        std::vector<Vec> step_rhs(2);
        step_rhs[0] = linalg::scale(v1, -gamma / dmax);
        step_rhs[0][static_cast<std::size_t>(a.dropped())] = 0.0;
        //    δy + δc adds the feasibility correction H^{-1}(A^T x̄ - b).
        step_rhs[1].resize(n);
        par::parallel_for(0, n, [&](std::size_t i) {
          step_rhs[1][i] = (-gamma * v1[i] - rp[i]) / dmax;
        });
        step_rhs[1][static_cast<std::size_t>(a.dropped())] = 0.0;
        linalg::Vec& warm_dy = cache.warm_start(linalg::AccelSite::kRobustStep, 0, n);
        linalg::Vec& warm_q = cache.warm_start(linalg::AccelSite::kRobustStep, 1, n);
        auto sols = linalg::solve_sdd_multi(ctx, lap, step_rhs, precond, opts.solve,
                                            {&warm_dy, &warm_q});
        for (const auto& s : sols) {
          if (is_lifecycle_error(s.status)) {
            res.status = s.status;
            res.detail = "ipm::robust_ipm: solve lifecycle expired during robust-step solve";
            return res;
          }
        }
        Vec dy = std::move(sols[0].x);
        dy[static_cast<std::size_t>(a.dropped())] = 0.0;
        Vec q = std::move(sols[1].x);
        q[static_cast<std::size_t>(a.dropped())] = 0.0;
        warm_dy = dy;
        warm_q = q;

        // 4. Sampled primal correction (the R matrix of eq. (5)).
        const auto r_entries = sampler.sample(q);
        std::vector<std::size_t> h_idx;
        Vec h_val;
        h_idx.reserve(r_entries.size());
        for (const auto& entry : r_entries) {
          const std::size_t i = entry.index;
          const auto& arc = g.arc(static_cast<graph::EdgeId>(i));
          const double qu =
              static_cast<std::size_t>(arc.from) == static_cast<std::size_t>(a.dropped())
                  ? 0.0
                  : q[static_cast<std::size_t>(arc.from)];
          const double qv = static_cast<std::size_t>(arc.to) == static_cast<std::size_t>(a.dropped())
                                ? 0.0
                                : q[static_cast<std::size_t>(arc.to)];
          double hv = -entry.inv_prob * d_weights[i] * (qv - qu);
          // Interior safeguard: a sampled update never crosses half the
          // remaining distance to a wall.
          const double cap_room = 0.5 * std::min(x_mirror[i], lp.cap[i] - x_mirror[i]);
          hv = std::clamp(hv, -cap_room, cap_room);
          h_idx.push_back(i);
          h_val.push_back(hv);
        }
        const auto sum_res = pg.query_sum(h_idx, h_val, -gamma);

        // 5. Propagate x̄ changes: residual, Lewis scaling, sampler weights.
        {
          std::vector<std::size_t> moved;
          Vec lw_vals;
          Vec hh_vals, hs_a, hs_b;
          for (const std::size_t i : sum_res.changed) {
            double xi = (*sum_res.approx)[i];
            xi = std::clamp(xi, 0.02 * lp.cap[i], 0.98 * lp.cap[i]);
            const double delta = xi - x_mirror[i];
            if (delta == 0.0) continue;
            const auto& arc = g.arc(static_cast<graph::EdgeId>(i));
            rp[static_cast<std::size_t>(arc.from)] += delta;
            rp[static_cast<std::size_t>(arc.to)] -= delta;
            x_mirror[i] = xi;
            moved.push_back(i);
            const double h2 = 1.0 / xi / xi + 1.0 / (lp.cap[i] - xi) / (lp.cap[i] - xi);
            lw_vals.push_back(1.0 / std::sqrt(h2));
            const double dw = 1.0 / (tau_cur[i] * h2);
            hh_vals.push_back(std::sqrt(dw));
            hs_a.push_back(dw);
            hs_b.push_back(tau_cur[i]);
            d_weights[i] = dw;
          }
          rp[static_cast<std::size_t>(a.dropped())] = 0.0;
          if (!moved.empty()) {
            lewis.scale(moved, lw_vals);
            hh_sparse.scale(moved, hh_vals);
            sampler.scale(moved, hs_a, hs_b);
            stale.insert(stale.end(), moved.begin(), moved.end());
          }
        }

        // 6. Dual step δs = μ A δy (eq. (3)); y tracked explicitly.
        const Vec dual_h = linalg::scale(dy, res.mu);
        const auto dual_res = dual.add(dual_h);
        par::parallel_for(0, n, [&](std::size_t i) { res.y[i] -= res.mu * dy[i]; });
        res.y[static_cast<std::size_t>(a.dropped())] = 0.0;
        stale.insert(stale.end(), dual_res.changed.begin(), dual_res.changed.end());

        // 7. τ̄ refresh.
        const auto lres = lewis.query();
        for (const std::size_t i : lres.changed) {
          tau_sum += (*lres.approx)[i] - tau_cur[i];
          tau_cur[i] = (*lres.approx)[i];
          stale.push_back(i);
        }

        // 8. Shrink μ.
        res.mu *= 1.0 - step_fraction / std::sqrt(std::max(tau_sum, 1.0));
        res.mu = std::max(res.mu, opts.mu_end * 0.5);
        if (!std::isfinite(res.mu) || !std::isfinite(tau_sum)) {
          res.status = SolveStatus::kNumericalFailure;
          res.detail = "ipm::robust_ipm: non-finite path parameter";
          return res;
        }
        res.robust_step_work += step_scope.elapsed().work;
        if (res.mu <= opts.mu_end) break;
      }

      // Epoch end: pull the exact x out of the accumulator and clamp interior.
      res.x = pg.compute_exact_sum();
      for (std::size_t i = 0; i < m; ++i) {
        if (!std::isfinite(res.x[i])) {
          res.status = SolveStatus::kNumericalFailure;
          res.detail = "ipm::robust_ipm: non-finite primal iterate at epoch end";
          return res;
        }
        res.x[i] = std::clamp(res.x[i], 0.02 * lp.cap[i], 0.98 * lp.cap[i]);
      }
      par::charge(m, 1);
      failed_epochs = 0;
    } catch (const ComponentError& err) {
      // A canceled/expired solve is not a broken certificate: the rebuild
      // loop must not burn the budget the caller just withdrew. Pass the
      // lifecycle status straight through.
      if (is_lifecycle_error(err.status())) {
        res.status = err.status();
        res.detail = err.what();
        return res;
      }
      // A randomized structure failed its certificate mid-epoch. The exact
      // iterate res.x/res.y is still valid (x-bar progress since the last
      // resync is discarded); rebuild everything with fresh seeds.
      if (++failed_epochs > opts.max_structure_rebuilds) {
        res.status = err.status();
        res.detail = err.what();
        return res;
      }
      ++res.structure_rebuilds;
      ctx.recovery().note(RecoveryEvent::kStructureRebuild);
      seed_shift += 7919;  // fresh seeds for every randomized structure
    }
  }
  if (!res.converged) {
    res.status = SolveStatus::kIterationLimit;
    res.detail = "ipm::robust_ipm: max_iters reached before mu_end";
  }
  res.sparsifier_edges = sparsifier_solves > 0 ? sparsifier_edge_sum / sparsifier_solves : 0;
  return res;
}

}  // namespace pmcf::ipm
