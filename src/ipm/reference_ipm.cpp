#include "ipm/reference_ipm.hpp"

#include <algorithm>
#include <cmath>

#include "ipm/barrier.hpp"
#include "linalg/accel_cache.hpp"
#include "linalg/kernels.hpp"
#include "linalg/laplacian.hpp"
#include "parallel/scheduler.hpp"

namespace pmcf::ipm {

namespace {
using linalg::Vec;
}  // namespace

double initial_mu(const IpmLp& lp, double target_centrality) {
  // At x0 = u/2 we have φ'(x0) = 0 and √φ''(x0) = 2√2/u, so the centrality
  // vector is z_e = s_e / (μ τ_e √φ''_e) with s = c (y0 = 0) and τ_e >= n/m.
  // Choosing μ >= max_e |c_e| u_e m / (2√2 n ε) gives ||z||_inf <= ε.
  const std::size_t m = lp.cost.size();
  const auto n = static_cast<double>(lp.graph->num_vertices());
  double max_cu = 0.0;
  for (std::size_t e = 0; e < m; ++e) max_cu = std::max(max_cu, std::abs(lp.cost[e]) * lp.cap[e]);
  par::charge(m, par::ceil_log2(std::max<std::size_t>(m, 2)));
  return max_cu * static_cast<double>(m) / (2.0 * std::sqrt(2.0) * n * target_centrality) + 1.0;
}

IpmResult reference_ipm(core::SolverContext& ctx, const IpmLp& lp, Vec x0, Vec y0, double mu0,
                        const IpmOptions& opts) {
  const graph::Digraph& g = *lp.graph;
  const linalg::IncidenceOp a(g, lp.dropped);
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  par::Rng rng(opts.seed);

  IpmResult res;
  res.x = std::move(x0);
  res.y = std::move(y0);
  res.mu = mu0;

  // Step strategy: sentinel fields resolve against the installed preset
  // (under "default" these are exactly the historical constants).
  const core::IpmStepIngredient& stp = ctx.ingredients().step;
  const double step_fraction = core::resolved(opts.step_fraction, stp.ref_step_fraction);
  const double centrality_slack =
      core::resolved(opts.centrality_slack, stp.ref_centrality_slack);
  const double boundary_margin = core::resolved(opts.boundary_margin, stp.ref_boundary_margin);
  const std::int32_t lewis_rounds = core::resolved(opts.lewis_rounds, stp.ref_lewis_rounds);
  const std::int32_t lewis_every = core::resolved(opts.lewis_every, stp.ref_lewis_every);

  // Warm-started Lewis weights: keep τ between iterations, refresh with a
  // few fixed-point rounds against the current scaling. A caller-provided
  // tau_io of the right size resumes the fixed point from a previous solve
  // (cross-solve warm start); anything else gets the flat cold start.
  const bool tau_from_caller = opts.tau_io != nullptr && opts.tau_io->size() == m &&
                               std::all_of(opts.tau_io->begin(), opts.tau_io->end(), [](double t) {
                                 return std::isfinite(t) && t > 0.0;
                               });
  Vec tau = tau_from_caller ? *opts.tau_io
                            : Vec(m, static_cast<double>(n) / static_cast<double>(m) + 0.5);
  const double p = linalg::lewis_p(m, n);
  const double expo = 0.5 - 1.0 / p;
  const double reg = static_cast<double>(n) / static_cast<double>(m);

  // Per-iteration work buffers, allocated once. The Newton loop itself is
  // allocation-free apart from the sparse Laplacian rebuild and the CG
  // solver's own (per-solve) state.
  Vec hess(m), grad(m), v(m), scaled(m), s(m), z(m), d(m), resid(m), dresid(m),
      dn(m), ay(m), a_dy(m), dx(m);
  Vec atx(n), rp(n), rhs(n), rhsn(n);

  for (std::int32_t it = 0; it < opts.max_iters; ++it) {
    // Cooperative lifecycle check (DESIGN.md §11): a canceled or expired
    // solve winds down here, at outer-iteration granularity, with the typed
    // status — never a partial kOk.
    if (const SolveStatus ls = ctx.check_lifecycle(); ls != SolveStatus::kOk) {
      res.status = ls;
      res.detail = "ipm::reference_ipm: solve lifecycle expired";
      return res;
    }
    res.iterations = it + 1;
    barrier_hess_into(res.x, lp.cap, hess);
    barrier_grad_into(res.x, lp.cap, grad);
    linalg::map_into(hess, v, [](double h) { return 1.0 / std::sqrt(h); });

    // Refresh τ (Lewis fixed point, warm start) every lewis_every iterations;
    // Lewis weights drift slowly along the path (Theorem C.1's premise).
    // leverage_scores retries a corrupted sketch internally (reseed + widen);
    // a persistent sketch failure surfaces here as a typed status.
    const bool refresh_tau = (it % std::max<std::int32_t>(lewis_every, 1)) == 0;
    for (std::int32_t round = 0; refresh_tau && round < lewis_rounds; ++round) {
      par::parallel_for(0, m, [&](std::size_t i) { scaled[i] = std::pow(tau[i], expo) * v[i]; });
      Vec sigma;
      try {
        sigma = opts.exact_leverage ? linalg::leverage_scores_exact(a, scaled)
                                    : linalg::leverage_scores(ctx, a, scaled, rng, opts.leverage);
      } catch (const ComponentError& err) {
        res.status = err.status();
        res.detail = err.what();
        return res;
      }
      par::parallel_for(0, m, [&](std::size_t i) { tau[i] = sigma[i] + reg; });
    }
    const double tau_sum = linalg::sum(tau);

    // Dual slack and centrality.
    a.apply_into(res.y, ay);
    linalg::sub_into(lp.cost, ay, s);
    par::parallel_for(0, m, [&](std::size_t i) {
      z[i] = (s[i] + res.mu * tau[i] * grad[i]) / (res.mu * tau[i] * std::sqrt(hess[i]));
    });
    const double centrality = linalg::norm_inf(z);
    res.final_centrality = centrality;

    // Primal residual r_p = b - A^T x.
    a.apply_transpose_into(res.x, atx);
    linalg::sub_into(lp.b, atx, rp);
    rp[static_cast<std::size_t>(a.dropped())] = 0.0;
    res.max_primal_residual = std::max(res.max_primal_residual, linalg::norm_inf(rp));

    // Only shrink mu when sufficiently centered; otherwise re-center first.
    if (centrality < centrality_slack) {
      if (res.mu <= opts.mu_end) {
        res.converged = true;
        break;
      }
      res.mu *= 1.0 - step_fraction / std::sqrt(std::max(tau_sum, 1.0));
      res.mu = std::max(res.mu, opts.mu_end * 0.5);
    }

    // Newton step for: s + A δy + μτ(φ' + Φ'' δx) = 0, A^T δx = r_p.
    // D = (μ τ Φ'')^{-1};  L δy = -r_p - A^T D (s + μτφ').
    par::parallel_for(0, m, [&](std::size_t i) { d[i] = 1.0 / (res.mu * tau[i] * hess[i]); });
    par::parallel_for(0, m,
                      [&](std::size_t i) { resid[i] = s[i] + res.mu * tau[i] * grad[i]; });
    linalg::mul_into(d, resid, dresid);
    a.apply_transpose_into(dresid, rhs);
    par::parallel_for(0, n, [&](std::size_t i) { rhs[i] = -rp[i] - rhs[i]; });
    rhs[static_cast<std::size_t>(a.dropped())] = 0.0;
    // Normalize the weight scale so the dropped row's unit pin is
    // commensurate with the Laplacian diagonal (keeps CG well conditioned).
    const double dmax = linalg::norm_inf(d);
    linalg::scale_into(d, 1.0 / dmax, dn);
    linalg::scale_into(rhs, 1.0 / dmax, rhsn);
    // Acceleration layer (DESIGN.md §10): the Laplacian pattern is fixed
    // across iterations (value-only refresh), the incomplete-Cholesky
    // preconditioner survives while the normalized weights drift slowly
    // along the path, and δy warm-starts from the previous iteration's
    // direction.
    linalg::AccelCache& cache = linalg::accel_cache(ctx);
    const linalg::Csr& lap = cache.laplacian(ctx, g, dn, a.dropped());
    const linalg::SddPreconditioner& precond =
        cache.preconditioner(ctx, linalg::AccelSite::kNewton, lap, dn);
    linalg::Vec& warm_dy = cache.warm_start(linalg::AccelSite::kNewton, 0, n);
    // Newton system with the full recovery ladder: CG, tolerance
    // escalation, dense elimination — shaped by the installed preset's
    // CgLadderIngredient. A rung that still fails ends the solve with a
    // typed status instead of stepping on a garbage direction.
    linalg::ResilientSolveOptions rso = linalg::ladder_options(ctx);
    rso.base = opts.solve;
    auto sol = linalg::solve_sdd_resilient(ctx, lap, rhsn, rso, &precond, &warm_dy);
    res.cg_escalations += sol.tolerance_escalations;
    res.dense_fallbacks += sol.used_dense_fallback ? 1 : 0;
    if (sol.status != SolveStatus::kOk) {
      // Lifecycle statuses pass through untouched — they describe the
      // request, not the instance or the numerics.
      res.status = is_lifecycle_error(sol.status) ? sol.status : SolveStatus::kNumericalFailure;
      res.detail = is_lifecycle_error(sol.status)
                       ? "ipm::reference_ipm: solve lifecycle expired during Newton solve"
                       : "linalg::solve_sdd: Newton system solve failed after escalation + fallback";
      return res;
    }
    Vec dy = std::move(sol.x);
    dy[static_cast<std::size_t>(a.dropped())] = 0.0;
    warm_dy = dy;  // seed the next iteration's Newton solve
    a.apply_into(dy, a_dy);
    par::parallel_for(0, m, [&](std::size_t i) { dx[i] = -d[i] * (resid[i] + a_dy[i]); });

    // Damping: stay `boundary_margin` away from the walls multiplicatively.
    double alpha = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (dx[i] < 0.0) {
        alpha = std::min(alpha, (1.0 - boundary_margin) * res.x[i] / -dx[i]);
      } else if (dx[i] > 0.0) {
        alpha = std::min(alpha, (1.0 - boundary_margin) * (lp.cap[i] - res.x[i]) / dx[i]);
      }
    }
    if (!std::isfinite(alpha)) {
      res.status = SolveStatus::kNumericalFailure;
      res.detail = "ipm::reference_ipm: non-finite Newton step";
      return res;
    }
    par::charge(m, par::ceil_log2(std::max<std::size_t>(m, 2)));
    par::parallel_for(0, m, [&](std::size_t i) { res.x[i] += alpha * dx[i]; });
    // With s = c - Ay the solved system's direction enters the dual with a
    // minus sign: y_new = y - δy (while δx above is already consistent).
    par::parallel_for(0, n, [&](std::size_t i) { res.y[i] -= alpha * dy[i]; });
    res.y[static_cast<std::size_t>(a.dropped())] = 0.0;
  }
  if (!res.converged) {
    res.status = SolveStatus::kIterationLimit;
    res.detail = "ipm::reference_ipm: max_iters reached before mu_end";
  }
  if (opts.tau_io != nullptr && res.converged) *opts.tau_io = tau;
  return res;
}

}  // namespace pmcf::ipm
