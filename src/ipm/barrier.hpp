#pragma once
// Two-sided logarithmic barrier (eq. (2) / Appendix F):
//   φ(x)_i = -log(x_i) - log(u_i - x_i)
// with derivatives φ', φ''. All functions are elementwise over the m arcs.

#include <cmath>

#include "linalg/kernels.hpp"
#include "parallel/scheduler.hpp"

namespace pmcf::ipm {

/// φ'(x)_i = -1/x_i + 1/(u_i - x_i), into a caller-owned buffer.
inline void barrier_grad_into(const linalg::Vec& x, const linalg::Vec& u, linalg::Vec& out) {
  par::parallel_for(0, x.size(),
                    [&](std::size_t i) { out[i] = -1.0 / x[i] + 1.0 / (u[i] - x[i]); });
}

inline linalg::Vec barrier_grad(const linalg::Vec& x, const linalg::Vec& u) {
  linalg::Vec out(x.size());
  barrier_grad_into(x, u, out);
  return out;
}

/// φ''(x)_i = 1/x_i^2 + 1/(u_i - x_i)^2  (always positive on the interior)
inline void barrier_hess_into(const linalg::Vec& x, const linalg::Vec& u, linalg::Vec& out) {
  par::parallel_for(0, x.size(), [&](std::size_t i) {
    const double a = 1.0 / x[i];
    const double b = 1.0 / (u[i] - x[i]);
    out[i] = a * a + b * b;
  });
}

inline linalg::Vec barrier_hess(const linalg::Vec& x, const linalg::Vec& u) {
  linalg::Vec out(x.size());
  barrier_hess_into(x, u, out);
  return out;
}

/// True iff x is strictly interior: 0 < x < u.
inline bool is_interior(const linalg::Vec& x, const linalg::Vec& u) {
  for (std::size_t i = 0; i < x.size(); ++i)
    if (!(x[i] > 0.0 && x[i] < u[i])) return false;
  par::charge(x.size(), par::ceil_log2(std::max<std::size_t>(x.size(), 2)));
  return true;
}

}  // namespace pmcf::ipm
