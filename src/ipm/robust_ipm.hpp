#pragma once
// Robust interior point method (Section 2.2 steps (4)-(5), Algorithms 11/12).
//
// The reference IPM recomputes all m coordinates of x, s, τ and the exact
// Laplacian every iteration — Θ(m) work per step. This solver replaces each
// of those with the paper's sublinear data structures:
//
//   s̄  — DualMaintenance (Theorem E.1): dyadic HeavyHitter drift detection,
//         only coordinates that moved are re-read;
//   τ̄  — LewisMaintenance (Theorem C.1): warm-started sketched leverage
//         scores, entries refreshed on scaling changes;
//   x̄, gradient — PrimalGradientMaintenance (Theorem D.1): the centrality
//         vector z̄ is bucketed, the steepest-descent step ∇Ψ(z̄)^♭(τ̄) is
//         computed over O(ε⁻² log n) buckets, and x̄ accumulates per-bucket
//         steps lazily;
//   Newton system — solved on a leverage-score spectral sparsifier with
//         Õ(n) edges sampled through the HeavyHitter (Lemma B.1);
//   primal sparsification — HeavySampler (Theorem E.2) draws R so that only
//         Õ(m/√n + n) coordinates of the dense part of δx are touched.
//
// Every `resync_every` ≈ √n iterations the structures are rebuilt from the
// exact state and one exact Newton re-centering step is taken (the paper's
// periodic re-initialization; amortized Õ(m/√n) per iteration). Work is
// measured by the PRAM tracker; bench_table1_mincostflow compares the
// per-iteration work of this solver against the reference IPM.

#include <cstdint>

#include "ipm/reference_ipm.hpp"

namespace pmcf::ipm {

struct RobustIpmOptions {
  double mu_end = 1e-4;
  /// Step-strategy knobs. The sentinels resolve to the installed preset's
  /// IpmStepIngredient rob_* fields — step_fraction 0.4, gamma 0.5,
  /// bucket_eps 0.1, dual_eps 0.05, primal_eps 0.02 under "default" —
  /// while explicit values always win.
  double step_fraction = core::kPresetDouble;  ///< r in mu <- mu(1 - r/sqrt(Στ))
  double gamma = core::kPresetDouble;          ///< steepest-descent step scale
  double bucket_eps = core::kPresetDouble;     ///< bucketing granularity (ds stack)
  double dual_eps = core::kPresetDouble;       ///< s̄ accuracy (relative to μτ√φ'')
  double primal_eps = core::kPresetDouble;     ///< x̄ accuracy (relative to capacity)
  std::int32_t resync_every = 0;  ///< 0 => rob_resync_multiplier*ceil(sqrt(n))
  std::int32_t max_iters = 20000;
  double sparsifier_k = 1.0;      ///< leverage oversampling K'
  linalg::SolveOptions solve;
  std::uint64_t seed = 37;
  /// Recovery policy: how often a failed randomized structure build
  /// (expander certificate violation, sketch failure) may be retried with a
  /// fresh seed before the solver gives up with a typed status.
  std::int32_t max_structure_rebuilds = 3;
  /// Recovery policy: degenerate sparsifier samples (heavy-hitter false
  /// negatives) are redrawn with widened oversampling this many times before
  /// the Newton solve falls back to the dense edge set.
  std::int32_t max_sparsifier_retries = 2;
};

struct RobustIpmResult {
  linalg::Vec x;
  linalg::Vec y;
  double mu = 0.0;
  std::int32_t iterations = 0;
  std::int32_t resyncs = 0;
  bool converged = false;
  double final_centrality = 0.0;
  /// Work charged during non-resync iterations / their count — the
  /// sublinear-per-iteration quantity of the paper.
  std::uint64_t robust_step_work = 0;
  std::int32_t robust_steps = 0;
  std::uint64_t sparsifier_edges = 0;  ///< avg sampled edges per solve
  /// kOk when converged; otherwise the typed failure that ended the solve
  /// (kSketchFailure after exhausted rebuilds, kNumericalFailure, ...).
  SolveStatus status = SolveStatus::kOk;
  std::string detail;
  std::int32_t structure_rebuilds = 0;   ///< reseeded ds-stack rebuilds
  std::int32_t sparsifier_retries = 0;   ///< redrawn degenerate samples
  std::int32_t dense_fallbacks = 0;      ///< solves on the dense edge set
};

/// Follow the central path with the sublinear ds stack. `ctx` scopes fault
/// injection, recovery telemetry, and PRAM accounting for the whole ds stack
/// to the calling solve; randomness still derives from opts.seed so results
/// are a function of (lp, x0, y0, mu0, opts) alone.
RobustIpmResult robust_ipm(core::SolverContext& ctx, const IpmLp& lp, linalg::Vec x0,
                           linalg::Vec y0, double mu0, const RobustIpmOptions& opts = {});

}  // namespace pmcf::ipm
