#pragma once
// Reference interior point method: dense per-iteration Lewis-weight path
// following (Section 2.2, steps (3)).
//
// Serves two roles in the reproduction (DESIGN.md §5.2):
//   1. It is the Õ(m)-work-per-iteration, Õ(√n)-iteration method — i.e. the
//      Lee–Sidford [LS14] row of Table 1 (Õ(m√n) work, Õ(√n) depth).
//   2. It is the exact central-path computation that the robust IPM
//      (robust_ipm.hpp, steps (4)-(5)) approximates; tests cross-check the
//      two on identical instances.
//
// One iteration = recompute s = c - Ay, the regularized Lewis weights τ, the
// centrality vector z = (s + μτφ'(x)) / (μτ√φ''(x)), then take a damped
// primal-dual Newton step for the weighted barrier system and shrink μ by
// (1 - r/√(Στ)).

#include <cstdint>
#include <string>
#include <vector>

#include "core/solve_status.hpp"
#include "core/solver_context.hpp"
#include "graph/digraph.hpp"
#include "linalg/incidence.hpp"
#include "linalg/lewis.hpp"
#include "linalg/sdd_solver.hpp"
#include "linalg/kernels.hpp"
#include "parallel/rng.hpp"

namespace pmcf::ipm {

/// The LP min c^T x s.t. A^T x = b, 0 <= x <= u over a digraph's incidence
/// matrix (column of `dropped` removed; b[dropped] must be 0).
struct IpmLp {
  const graph::Digraph* graph = nullptr;
  linalg::Vec b;     ///< size n, b[dropped] = 0
  linalg::Vec cost;  ///< size m
  linalg::Vec cap;   ///< size m (strictly positive)
  graph::Vertex dropped = -1;  ///< column removed for full rank (-1: last)
};

struct IpmOptions {
  double mu_end = 1e-4;          ///< terminate when mu drops below this
  /// Step-strategy knobs. The sentinels resolve to the installed preset's
  /// IpmStepIngredient ref_* fields — step_fraction 0.25, centrality_slack
  /// 0.5, boundary_margin 0.05, lewis_rounds 1, lewis_every 3 under
  /// "default" — while explicit values always win.
  double step_fraction = core::kPresetDouble;   ///< r in mu <- mu (1 - r/sqrt(Στ))
  double centrality_slack = core::kPresetDouble; ///< re-center (no mu decrease) above this
  double boundary_margin = core::kPresetDouble; ///< damping keeps x this fraction off walls
  std::int32_t max_iters = 20000;
  std::int32_t lewis_rounds = core::kPresetInt;  ///< warm-started Lewis rounds per refresh
  std::int32_t lewis_every = core::kPresetInt;   ///< refresh τ every this many iterations
  bool exact_leverage = false;         ///< dense oracle (tiny instances only)
  linalg::LeverageOptions leverage;    ///< JL estimator settings
  linalg::SolveOptions solve;          ///< Newton system solver
  std::uint64_t seed = 7;
  /// Cross-solve Lewis-weight slot (DESIGN.md §15): when non-null and sized
  /// m, *tau_io seeds the regularized Lewis weights τ instead of the flat
  /// n/m + 1/2 start, and the converged τ is written back on success — so an
  /// incremental re-solve resumes the fixed point where the last solve left
  /// it. Borrowed; must outlive the call. nullptr (the default) keeps the
  /// historical cold start bit-identically.
  linalg::Vec* tau_io = nullptr;
};

struct IpmResult {
  linalg::Vec x;            ///< final (near-central) primal iterate
  linalg::Vec y;            ///< final dual iterate
  double mu = 0.0;
  std::int32_t iterations = 0;
  bool converged = false;
  double final_centrality = 0.0;
  double max_primal_residual = 0.0;  ///< max ||A^T x - b||_inf seen
  /// kOk when converged; kIterationLimit / kNumericalFailure /
  /// kSketchFailure otherwise, with the failing component in `detail`.
  SolveStatus status = SolveStatus::kOk;
  std::string detail;
  std::int32_t cg_escalations = 0;   ///< Newton solves retried at looser tol
  std::int32_t dense_fallbacks = 0;  ///< Newton solves done by dense elimination
};

/// Closed-form initial mu making x0 (with φ'(x0)=0, e.g. x0=u/2) ε-centered
/// for y0 = 0 (Definition F.1 approximate centrality).
double initial_mu(const IpmLp& lp, double target_centrality = 0.1);

/// Follow the central path from (x0, y0, mu0) down to opts.mu_end. `ctx`
/// scopes the Newton-system recovery ladder, sketch retries, and PRAM
/// accounting to the calling solve; randomness still derives from opts.seed
/// so results are a function of (lp, x0, y0, mu0, opts) alone.
IpmResult reference_ipm(core::SolverContext& ctx, const IpmLp& lp, linalg::Vec x0, linalg::Vec y0,
                        double mu0, const IpmOptions& opts = {});

}  // namespace pmcf::ipm
