#include "ipm/rounding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/ssp.hpp"
#include "parallel/scheduler.hpp"

namespace pmcf::ipm {

namespace {

using graph::Vertex;

constexpr std::int64_t kInfCost = std::numeric_limits<std::int64_t>::max() / 4;

/// Residual graph over integral flow f: arc 2k forward (cap u-f, cost c),
/// arc 2k+1 backward (cap f, cost -c).
struct Residual {
  const graph::Digraph* g;
  std::vector<std::int64_t>* f;

  [[nodiscard]] std::int64_t cap(std::size_t a) const {
    const std::size_t k = a / 2;
    const auto& arc = g->arc(static_cast<graph::EdgeId>(k));
    return (a % 2 == 0) ? arc.cap - (*f)[k] : (*f)[k];
  }
  [[nodiscard]] std::int64_t cost(std::size_t a) const {
    const std::size_t k = a / 2;
    const auto& arc = g->arc(static_cast<graph::EdgeId>(k));
    return (a % 2 == 0) ? arc.cost : -arc.cost;
  }
  [[nodiscard]] Vertex tail(std::size_t a) const {
    const auto& arc = g->arc(static_cast<graph::EdgeId>(a / 2));
    return (a % 2 == 0) ? arc.from : arc.to;
  }
  [[nodiscard]] Vertex head(std::size_t a) const {
    const auto& arc = g->arc(static_cast<graph::EdgeId>(a / 2));
    return (a % 2 == 0) ? arc.to : arc.from;
  }
  void push(std::size_t a, std::int64_t amount) const {
    const std::size_t k = a / 2;
    (*f)[k] += (a % 2 == 0) ? amount : -amount;
  }
};

/// Cancel one negative cycle if present. Returns true if a cycle was found.
bool cancel_one_negative_cycle(const Residual& r) {
  const auto n = static_cast<std::size_t>(r.g->num_vertices());
  const std::size_t arcs = 2 * static_cast<std::size_t>(r.g->num_arcs());
  // Bellman-Ford from a virtual source (dist 0 everywhere).
  std::vector<std::int64_t> dist(n, 0);
  std::vector<std::int64_t> pre(n, -1);
  std::int64_t touched = -1;
  for (std::size_t round = 0; round < n; ++round) {
    touched = -1;
    for (std::size_t a = 0; a < arcs; ++a) {
      if (r.cap(a) <= 0) continue;
      const auto u = static_cast<std::size_t>(r.tail(a));
      const auto v = static_cast<std::size_t>(r.head(a));
      if (dist[u] + r.cost(a) < dist[v]) {
        dist[v] = dist[u] + r.cost(a);
        pre[v] = static_cast<std::int64_t>(a);
        touched = static_cast<std::int64_t>(v);
      }
    }
    if (touched < 0) return false;
  }
  // A relaxation in round n implies a negative cycle; walk n steps back to
  // land inside it, then trace it out.
  std::size_t v = static_cast<std::size_t>(touched);
  for (std::size_t step = 0; step < n; ++step)
    v = static_cast<std::size_t>(r.tail(static_cast<std::size_t>(pre[v])));
  std::vector<std::size_t> cycle;
  std::size_t w = v;
  do {
    const auto a = static_cast<std::size_t>(pre[w]);
    cycle.push_back(a);
    w = static_cast<std::size_t>(r.tail(a));
  } while (w != v);
  std::int64_t bottleneck = kInfCost;
  for (const std::size_t a : cycle) bottleneck = std::min(bottleneck, r.cap(a));
  for (const std::size_t a : cycle) r.push(a, bottleneck);
  return true;
}

}  // namespace

RoundRepairResult round_and_repair(core::SolverContext& ctx, const graph::Digraph& g,
                                   const std::vector<std::int64_t>& b,
                                   const linalg::Vec& x_frac) {
  // Callers may invoke this without installing bindings (e.g. direct tests);
  // pin the charges to the supplied context either way.
  const core::ContextScope scope(ctx);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const auto m = static_cast<std::size_t>(g.num_arcs());
  RoundRepairResult res;
  res.flow.assign(m, 0);
  for (std::size_t k = 0; k < m; ++k) {
    const auto& arc = g.arc(static_cast<graph::EdgeId>(k));
    // llround of a non-finite or out-of-range double is UB; sanitize first.
    // A garbage entry only costs repair work, never correctness.
    const double xk = std::isfinite(x_frac[k])
                          ? std::clamp(x_frac[k], 0.0, static_cast<double>(arc.cap))
                          : 0.0;
    res.flow[k] = std::clamp<std::int64_t>(std::llround(xk), 0, arc.cap);
  }
  par::charge(m, 1);

  // Imbalance δ_v = b_v - (A^T x̂)_v; route it through the residual graph.
  std::vector<std::int64_t> delta(n, 0);
  for (std::size_t v = 0; v < n; ++v) delta[v] = b[v];
  for (std::size_t k = 0; k < m; ++k) {
    const auto& arc = g.arc(static_cast<graph::EdgeId>(k));
    delta[static_cast<std::size_t>(arc.to)] -= res.flow[k];
    delta[static_cast<std::size_t>(arc.from)] += res.flow[k];
  }
  std::int64_t total_pos = 0;
  for (std::size_t v = 0; v < n; ++v)
    if (delta[v] > 0) total_pos += delta[v];
  res.imbalance_routed = total_pos;
  par::charge(m + n, par::ceil_log2(std::max<std::size_t>(m + n, 2)));

  // Cancel negative cycles first: cycles do not change A^T x, and the SSP
  // router below requires a residual graph free of negative cycles. Each
  // cancellation is a full Bellman-Ford, so the lifecycle poll sits at
  // per-cycle granularity (DESIGN.md §11).
  {
    Residual r{&g, &res.flow};
    while (cancel_one_negative_cycle(r)) {
      ++res.cycles_canceled;
      if (const SolveStatus ls = ctx.check_lifecycle(); ls != SolveStatus::kOk) {
        res.status = ls;
        return res;
      }
    }
  }

  if (total_pos > 0) {
    // Build the residual as a digraph and route δ with SSP: a path from a
    // (δ_a < 0: too much inflow) to b (δ_b > 0) raises (A^T x)_b and lowers
    // (A^T x)_a, exactly what is needed.
    graph::Digraph residual(static_cast<Vertex>(n));
    std::vector<std::size_t> res_to_half;  // residual arc -> half-arc index
    for (std::size_t k = 0; k < m; ++k) {
      const auto& arc = g.arc(static_cast<graph::EdgeId>(k));
      if (arc.cap - res.flow[k] > 0) {
        residual.add_arc(arc.from, arc.to, arc.cap - res.flow[k], arc.cost);
        res_to_half.push_back(2 * k);
      }
      if (res.flow[k] > 0) {
        residual.add_arc(arc.to, arc.from, res.flow[k], -arc.cost);
        res_to_half.push_back(2 * k + 1);
      }
    }
    std::vector<std::int64_t> route_b(n, 0);
    for (std::size_t v = 0; v < n; ++v) route_b[v] = -delta[v];  // supply at δ<0
    const auto routed = baselines::ssp_min_cost_b_flow(residual, route_b);
    res.feasible = (routed.flow == total_pos);
    Residual r{&g, &res.flow};
    for (std::size_t a = 0; a < routed.arc_flow.size(); ++a)
      if (routed.arc_flow[a] > 0) r.push(res_to_half[a], routed.arc_flow[a]);
  } else {
    res.feasible = true;
  }

  // Optimality: cancel negative residual cycles until none remain.
  Residual r{&g, &res.flow};
  while (cancel_one_negative_cycle(r)) {
    ++res.cycles_canceled;
    if (const SolveStatus ls = ctx.check_lifecycle(); ls != SolveStatus::kOk) {
      res.status = ls;
      return res;
    }
  }

  for (std::size_t k = 0; k < m; ++k)
    res.cost += res.flow[k] * g.arc(static_cast<graph::EdgeId>(k)).cost;
  par::charge(m, par::ceil_log2(std::max<std::size_t>(m, 2)));
  res.status = res.feasible ? SolveStatus::kOk : SolveStatus::kInfeasible;
  return res;
}

}  // namespace pmcf::ipm
