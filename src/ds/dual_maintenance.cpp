#include "ds/dual_maintenance.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/scheduler.hpp"

namespace pmcf::ds {

namespace {
using linalg::Vec;
}

DualMaintenance::DualMaintenance(core::SolverContext& ctx, const graph::Digraph& g, Vec v_init,
                                 Vec w, DualMaintenanceOptions opts)
    : ctx_(&ctx), g_(&g), a_(g), opts_(opts), w_(std::move(w)) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  period_ = opts_.period > 0
                ? opts_.period
                : static_cast<std::int32_t>(std::uint64_t{1}
                                            << par::ceil_log2(static_cast<std::uint64_t>(
                                                   std::ceil(std::sqrt(static_cast<double>(n)))) + 1));
  levels_ = static_cast<std::int32_t>(par::ceil_log2(static_cast<std::uint64_t>(period_))) + 1;
  reinitialize(std::move(v_init));
}

void DualMaintenance::reinitialize(Vec v_init) {
  const auto n = static_cast<std::size_t>(g_->num_vertices());
  v_init_ = std::move(v_init);
  v_bar_ = v_init_;
  f_hat_.assign(n, 0.0);
  f_level_.assign(static_cast<std::size_t>(levels_), Vec(n, 0.0));
  pending_.assign(static_cast<std::size_t>(levels_), {});
  t_ = 0;
  // HeavyHitter rows weighted by 1/w: a drift of 0.2 w_i ε shows up as a
  // weighted magnitude of 0.2 ε.
  Vec inv_w(w_.size());
  for (std::size_t i = 0; i < w_.size(); ++i) inv_w[i] = w_[i] > 0.0 ? 1.0 / w_[i] : 0.0;
  hh_ = std::make_unique<HeavyHitter>(*ctx_, *g_, std::move(inv_w), opts_.hh);
}

std::vector<std::size_t> DualMaintenance::verify(const std::vector<std::size_t>& idx) {
  std::vector<std::size_t> changed;
  const double tol = 0.2 * opts_.eps / static_cast<double>(std::max(levels_, 1));
  for (const std::size_t i : idx) {
    const auto& arc = g_->arc(static_cast<graph::EdgeId>(i));
    const auto u = static_cast<std::size_t>(arc.from);
    const auto v = static_cast<std::size_t>(arc.to);
    const double fu = u == static_cast<std::size_t>(a_.dropped()) ? 0.0 : f_hat_[u];
    const double fv = v == static_cast<std::size_t>(a_.dropped()) ? 0.0 : f_hat_[v];
    const double exact = v_init_[i] + (fv - fu);
    if (std::abs(v_bar_[i] - exact) >= tol * w_[i]) {
      v_bar_[i] = exact;
      changed.push_back(i);
    }
  }
  par::charge(idx.size() + 1, par::ceil_log2(idx.size() + 2));
  return changed;
}

DualMaintenance::AddResult DualMaintenance::add(const Vec& h) {
  if (t_ == period_) {
    // Periodic rebuild from the exact current vector.
    reinitialize(compute_exact());
  }
  ++t_;
  par::parallel_for(0, f_hat_.size(), [&](std::size_t i) { f_hat_[i] += h[i]; });

  // Dyadic windows: add h to every level; levels j with 2^j | t fire a
  // heavy query against their window sum and then reset.
  std::vector<std::size_t> candidates;
  const double threshold = 0.2 * opts_.eps / static_cast<double>(std::max(levels_, 1));
  for (std::int32_t j = 0; j < levels_; ++j) {
    auto& fj = f_level_[static_cast<std::size_t>(j)];
    par::parallel_for(0, fj.size(), [&](std::size_t i) { fj[i] += h[i]; });
    if (t_ % (std::int32_t{1} << j) == 0) {
      const auto heavy = hh_->heavy_query(fj, threshold);
      candidates.insert(candidates.end(), heavy.begin(), heavy.end());
      fj.assign(fj.size(), 0.0);
      // Deferred accuracy-change re-checks scheduled on this level.
      auto& pend = pending_[static_cast<std::size_t>(j)];
      candidates.insert(candidates.end(), pend.begin(), pend.end());
      pend.clear();
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  AddResult res;
  res.changed = verify(candidates);
  res.approx = &v_bar_;
  return res;
}

void DualMaintenance::set_accuracy(const std::vector<std::size_t>& idx, const Vec& delta) {
  Vec inv(idx.size());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    w_[idx[k]] = delta[k];
    inv[k] = delta[k] > 0.0 ? 1.0 / delta[k] : 0.0;
  }
  hh_->scale(idx, inv);
  // Re-check the touched indices immediately and at every dyadic boundary.
  (void)verify(idx);
  for (auto& pend : pending_) pend.insert(pend.end(), idx.begin(), idx.end());
  par::charge(idx.size() + 1, par::ceil_log2(idx.size() + 2));
}

Vec DualMaintenance::compute_exact() const {
  Vec out(v_init_.size());
  const Vec af = a_.apply(f_hat_);
  par::parallel_for(0, out.size(), [&](std::size_t i) { out[i] = v_init_[i] + af[i]; });
  return out;
}

}  // namespace pmcf::ds
