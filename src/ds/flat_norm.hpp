#pragma once
// The mixed-norm maximizer v^♭(τ) = argmax_{||w||_{τ+∞} <= 1} <v, w>
// (Section 2.1, Lemma D.2 / Corollary D.3), where
//   ||w||_{τ+∞} = ||w||_∞ + c_norm * ||w||_τ ,  ||w||_τ = sqrt(Σ τ_i w_i²).
//
// Structure of the optimum: for a split β = ||w||_∞ the optimal w is the
// water-filling w_i = sign(v_i) * min(β, λ |v_i|/τ_i) with λ matched to the
// residual budget (1-β)/c_norm; the outer 1-D problem over β is unimodal.
// We solve the inner problem by bisection on λ and the outer by ternary
// search — O(m log²(1/ε)) work, O(log²(1/ε) + log m) depth.

#include <cstdint>

#include "linalg/kernels.hpp"

namespace pmcf::ds {

struct FlatNormResult {
  linalg::Vec w;        ///< the maximizer, ||w||_{τ+∞} <= 1
  double value = 0.0;   ///< <v, w>
};

/// c_norm is the C log(4m/n) constant of the mixed norm.
FlatNormResult flat_norm_argmax(const linalg::Vec& v, const linalg::Vec& tau, double c_norm);

}  // namespace pmcf::ds
