#include "ds/heavy_hitter.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/solver_context.hpp"
#include "parallel/fault_injection.hpp"
#include "parallel/scheduler.hpp"

namespace pmcf::ds {

namespace {
using expander::DynamicExpanderDecomposition;
using graph::Vertex;
using linalg::Vec;

constexpr std::int32_t kZeroWeight = std::numeric_limits<std::int32_t>::min();

/// Degree-weighted mean of h over a cluster (the shift making h' orthogonal
/// to the degree vector, eq. (8)).
double cluster_shift(const DynamicExpanderDecomposition::Cluster& cl, const Vec& h) {
  const auto& g = cl.graph();
  double s1 = 0.0, s2 = 0.0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto d = static_cast<double>(g.degree(v));
    if (d == 0.0) continue;
    s1 += d * h[static_cast<std::size_t>(cl.to_global(v))];
    s2 += d;
  }
  par::charge(static_cast<std::uint64_t>(g.num_vertices()),
              par::ceil_log2(static_cast<std::uint64_t>(g.num_vertices()) + 2));
  return s2 > 0.0 ? s1 / s2 : 0.0;
}

}  // namespace

std::int32_t HeavyHitter::exponent_of(double w) {
  return static_cast<std::int32_t>(std::floor(std::log2(w)));
}

HeavyHitter::Bucket& HeavyHitter::bucket_for(std::int32_t exp) {
  const auto it = bucket_index_.find(exp);
  if (it != bucket_index_.end()) return buckets_[it->second];
  bucket_index_.emplace(exp, buckets_.size());
  Bucket b;
  b.exponent = exp;
  auto opts = opts_.decomp;
  opts.phi = opts_.phi;
  opts.seed = opts_.seed + static_cast<std::uint64_t>(exp + 1024);
  b.decomp = std::make_unique<DynamicExpanderDecomposition>(*ctx_, g_->num_vertices(), opts);
  buckets_.push_back(std::move(b));
  return buckets_.back();
}

HeavyHitter::HeavyHitter(core::SolverContext& ctx, const graph::Digraph& g, Vec weights,
                         Options opts)
    : ctx_(&ctx), g_(&g), weights_(std::move(weights)), opts_(opts), rng_(opts.seed) {
  const auto m = static_cast<std::size_t>(g.num_arcs());
  assert(weights_.size() == m);
  row_bucket_.assign(m, kZeroWeight);
  // Group rows by weight exponent, one insert batch per bucket.
  std::unordered_map<std::int32_t, std::vector<DynamicExpanderDecomposition::EdgeSpec>> batches;
  for (std::size_t e = 0; e < m; ++e) {
    const auto& a = g.arc(static_cast<graph::EdgeId>(e));
    if (weights_[e] <= 0.0 || a.from == a.to) continue;
    const std::int32_t exp = exponent_of(weights_[e]);
    row_bucket_[e] = exp;
    batches[exp].push_back({a.from, a.to, static_cast<std::int64_t>(e)});
  }
  for (auto& [exp, batch] : batches) {
    Bucket& b = bucket_for(exp);
    b.decomp->insert(batch);
    b.count += batch.size();
  }
  par::charge(m, par::ceil_log2(std::max<std::size_t>(m, 2)));
}

void HeavyHitter::scale(const std::vector<std::size_t>& idx, const Vec& vals) {
  // Group removals and insertions per bucket, then apply batched.
  std::unordered_map<std::int32_t, std::vector<std::int64_t>> erases;
  std::unordered_map<std::int32_t, std::vector<DynamicExpanderDecomposition::EdgeSpec>> inserts;
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const std::size_t e = idx[k];
    const auto& a = g_->arc(static_cast<graph::EdgeId>(e));
    const std::int32_t nb =
        (vals[k] <= 0.0 || a.from == a.to) ? kZeroWeight : exponent_of(vals[k]);
    if (nb != row_bucket_[e]) {
      if (row_bucket_[e] != kZeroWeight)
        erases[row_bucket_[e]].push_back(static_cast<std::int64_t>(e));
      if (nb != kZeroWeight) inserts[nb].push_back({a.from, a.to, static_cast<std::int64_t>(e)});
      row_bucket_[e] = nb;
    }
    weights_[e] = vals[k];
  }
  for (auto& [exp, ids] : erases) {
    Bucket& b = bucket_for(exp);
    b.decomp->erase(ids);
    b.count -= ids.size();
  }
  for (auto& [exp, batch] : inserts) {
    Bucket& b = bucket_for(exp);
    b.decomp->insert(batch);
    b.count += batch.size();
  }
  par::charge(idx.size() + 1, par::ceil_log2(idx.size() + 2));
}

std::vector<std::size_t> HeavyHitter::heavy_query(const Vec& h, double eps) {
  last_query_scans_ = 0;
  std::vector<std::size_t> out;
  // Injected total false negative: every heavy row goes unreported, exactly
  // the w.h.p. failure mode of Lemma B.1.
  if (ctx_->fault().should_fire(par::FaultKind::kHeavyHitterMiss)) return out;
  for (const Bucket& b : buckets_) {
    if (b.count == 0) continue;
    // g_e < 2^{exp+1}, so a heavy row needs |h_u - h_v| >= eps / 2^{exp+1},
    // hence an endpoint with |h'_v| >= eps / 2^{exp+2}.
    const double delta = eps / std::ldexp(1.0, b.exponent + 1);
    for (const auto* cl : b.decomp->clusters()) {
      const double shift = cluster_shift(*cl, h);
      const auto& cg = cl->graph();
      for (Vertex v = 0; v < cg.num_vertices(); ++v) {
        if (cg.degree(v) == 0) continue;
        ++last_query_scans_;
        const double hp = h[static_cast<std::size_t>(cl->to_global(v))] - shift;
        if (std::abs(hp) < 0.5 * delta * (1.0 - 1e-12)) continue;
        for (const auto& inc : cg.incident(v)) {
          ++last_query_scans_;
          const auto e = static_cast<std::size_t>(cl->ext_of(inc.edge));
          const auto& a = g_->arc(static_cast<graph::EdgeId>(e));
          const double val = weights_[e] * std::abs(h[static_cast<std::size_t>(a.to)] -
                                                    h[static_cast<std::size_t>(a.from)]);
          if (val >= eps * (1.0 - 1e-12)) out.push_back(e);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  par::charge(last_query_scans_ + 1, par::ceil_log2(last_query_scans_ + 2));
  return out;
}

double HeavyHitter::sample_mass(const Vec& h) const {
  double mass = 0.0;
  for (const Bucket& b : buckets_) {
    if (b.count == 0) continue;
    const double w2 = std::ldexp(1.0, 2 * b.exponent);
    for (const auto* cl : b.decomp->clusters()) {
      const double shift = cluster_shift(*cl, h);
      const auto& cg = cl->graph();
      for (Vertex v = 0; v < cg.num_vertices(); ++v) {
        const auto d = static_cast<double>(cg.degree(v));
        if (d == 0.0) continue;
        const double hp = h[static_cast<std::size_t>(cl->to_global(v))] - shift;
        mass += w2 * hp * hp * d;
      }
    }
  }
  return mass;
}

std::vector<std::size_t> HeavyHitter::sample(const Vec& h, double big_k) {
  const double mass = sample_mass(h);
  std::vector<std::size_t> out;
  if (ctx_->fault().should_fire(par::FaultKind::kHeavyHitterMiss)) return out;
  if (mass <= 0.0) return out;
  const double q = big_k / mass;
  for (const Bucket& b : buckets_) {
    if (b.count == 0) continue;
    const double w2 = std::ldexp(1.0, 2 * b.exponent);
    for (const auto* cl : b.decomp->clusters()) {
      const double shift = cluster_shift(*cl, h);
      const auto& cg = cl->graph();
      for (Vertex v = 0; v < cg.num_vertices(); ++v) {
        if (cg.degree(v) == 0) continue;
        const double hp = h[static_cast<std::size_t>(cl->to_global(v))] - shift;
        const double p = std::min(q * w2 * hp * hp, 1.0);
        if (p <= 0.0) continue;
        const auto incidents = cg.incident(v);
        if (p >= 1.0) {
          for (const auto& inc : incidents)
            out.push_back(static_cast<std::size_t>(cl->ext_of(inc.edge)));
          continue;
        }
        const double log1mp = std::log1p(-p);
        double j = -1.0;
        for (;;) {
          double u = rng_.next_double();
          while (u <= 0.0) u = rng_.next_double();
          j += 1.0 + std::floor(std::log(u) / log1mp);
          if (j >= static_cast<double>(incidents.size())) break;
          out.push_back(
              static_cast<std::size_t>(cl->ext_of(incidents[static_cast<std::size_t>(j)].edge)));
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  par::charge(out.size() + 1, par::ceil_log2(out.size() + 2));
  return out;
}

double HeavyHitter::vertex_sample_prob(const Vec& h, double big_k, std::size_t arc,
                                       double mass) const {
  if (row_bucket_[arc] == kZeroWeight || mass <= 0.0) return 0.0;
  const auto bit = bucket_index_.find(row_bucket_[arc]);
  if (bit == bucket_index_.end()) return 0.0;
  const Bucket& b = buckets_[bit->second];
  graph::EdgeId local = -1;
  const auto* cl = b.decomp->find(static_cast<std::int64_t>(arc), &local);
  if (cl == nullptr) return 0.0;
  const double shift = cluster_shift(*cl, h);
  const double q = big_k / mass;
  const double w2 = std::ldexp(1.0, 2 * b.exponent);
  const auto ep = cl->graph().endpoints(local);
  const double hu = h[static_cast<std::size_t>(cl->to_global(ep.u))] - shift;
  const double hv = h[static_cast<std::size_t>(cl->to_global(ep.v))] - shift;
  const double pu = std::min(q * w2 * hu * hu, 1.0);
  const double pv = std::min(q * w2 * hv * hv, 1.0);
  return 1.0 - (1.0 - pu) * (1.0 - pv);
}

Vec HeavyHitter::probability(const std::vector<std::size_t>& idx, const Vec& h,
                             double big_k) const {
  const double mass = sample_mass(h);
  Vec out(idx.size(), 0.0);
  for (std::size_t k = 0; k < idx.size(); ++k)
    out[k] = vertex_sample_prob(h, big_k, idx[k], mass);
  par::charge(idx.size() + 1, par::ceil_log2(idx.size() + 2));
  return out;
}

std::vector<std::size_t> HeavyHitter::leverage_sample(double k_prime) {
  std::vector<std::size_t> out;
  if (ctx_->fault().should_fire(par::FaultKind::kHeavyHitterMiss)) return out;
  const double lg = std::max<double>(par::ceil_log2(static_cast<std::uint64_t>(g_->num_vertices()) + 2), 1);
  for (const Bucket& b : buckets_) {
    if (b.count == 0) continue;
    for (const auto* cl : b.decomp->clusters()) {
      const auto& cg = cl->graph();
      for (Vertex v = 0; v < cg.num_vertices(); ++v) {
        const auto d = static_cast<double>(cg.degree(v));
        if (d == 0.0) continue;
        const double p =
            std::min(16.0 * k_prime * lg / (opts_.phi * opts_.phi * d), 1.0);
        const auto incidents = cg.incident(v);
        if (p >= 1.0) {
          for (const auto& inc : incidents)
            out.push_back(static_cast<std::size_t>(cl->ext_of(inc.edge)));
          continue;
        }
        const double log1mp = std::log1p(-p);
        double j = -1.0;
        for (;;) {
          double u = rng_.next_double();
          while (u <= 0.0) u = rng_.next_double();
          j += 1.0 + std::floor(std::log(u) / log1mp);
          if (j >= static_cast<double>(incidents.size())) break;
          out.push_back(
              static_cast<std::size_t>(cl->ext_of(incidents[static_cast<std::size_t>(j)].edge)));
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  par::charge(out.size() + 1, par::ceil_log2(out.size() + 2));
  return out;
}

Vec HeavyHitter::leverage_bound(const std::vector<std::size_t>& idx, double k_prime) const {
  Vec out(idx.size(), 0.0);
  const double lg = std::max<double>(par::ceil_log2(static_cast<std::uint64_t>(g_->num_vertices()) + 2), 1);
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const std::size_t e = idx[k];
    if (row_bucket_[e] == kZeroWeight) continue;
    const auto bit = bucket_index_.find(row_bucket_[e]);
    if (bit == bucket_index_.end()) continue;
    graph::EdgeId local = -1;
    const auto* cl = buckets_[bit->second].decomp->find(static_cast<std::int64_t>(e), &local);
    if (cl == nullptr) continue;
    const auto ep = cl->graph().endpoints(local);
    const auto du = static_cast<double>(cl->graph().degree(ep.u));
    const auto dv = static_cast<double>(cl->graph().degree(ep.v));
    const double pu = std::min(16.0 * k_prime * lg / (opts_.phi * opts_.phi * du), 1.0);
    const double pv = std::min(16.0 * k_prime * lg / (opts_.phi * opts_.phi * dv), 1.0);
    out[k] = std::min(pu + pv, 1.0);
  }
  par::charge(idx.size() + 1, par::ceil_log2(idx.size() + 2));
  return out;
}

}  // namespace pmcf::ds
