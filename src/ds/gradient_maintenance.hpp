#pragma once
// Parallel primal and gradient maintenance (Appendix D).
//
// GradientReduction (Lemma D.4, Algorithm 6): buckets the m coordinates by
// (τ̃_i, z_i) into K = O(ε^{-2} log n) classes, maintains the n-dimensional
// bucket aggregates w^{(k,ℓ)} = A^T G 1_{I^{(k,ℓ)}}, and answers
// QueryProduct with A^T G ∇Ψ(z̄)^♭(τ̄) in Õ(n) work by solving the K-dim
// mixed-norm maximizer (Corollary D.3) over bucket representatives.
//
// GradientAccumulator (Lemma D.5, Algorithm 7): maintains the primal iterate
//   x^(t) = x^(init) + Σ_ℓ (G · bucket-step^(ℓ) + h^(ℓ))
// lazily: each coordinate stores the bucket-offset at its last refresh, and
// per-bucket ordered trigger sets surface exactly the coordinates whose
// accumulated drift exceeds their accuracy budget w_i ε.
//
// PrimalGradientMaintenance (Theorem D.1, Algorithm 8) composes the two.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "ds/flat_norm.hpp"
#include "linalg/incidence.hpp"
#include "linalg/kernels.hpp"

namespace pmcf::ds {

struct GradientOptions {
  double eps = 0.1;      ///< bucket granularity
  double lambda = 8.0;   ///< Ψ(z) = Σ cosh(λ z_i)
  double z_max = 2.0;    ///< |z_i| <= z_max assumed
  double c_norm = 4.0;   ///< mixed-norm constant C log(4m/n)
};

class GradientReduction {
 public:
  GradientReduction(const linalg::IncidenceOp& a, linalg::Vec g, linalg::Vec tau, linalg::Vec z,
                    GradientOptions opts = {});

  /// Set g_i=b_k, τ̃_i=c_k, z_i=d_k for i = idx[k]. Returns the new flat
  /// bucket index of each touched coordinate.
  std::vector<std::int32_t> update(const std::vector<std::size_t>& idx, const linalg::Vec& b,
                                   const linalg::Vec& c, const linalg::Vec& d);

  struct QueryResult {
    linalg::Vec v;          ///< A^T G ∇Ψ(z̄)^♭(τ̄) ∈ R^n
    linalg::Vec s;          ///< per-bucket step values (length K)
  };
  [[nodiscard]] QueryResult query() const;

  [[nodiscard]] double potential() const { return psi_; }
  [[nodiscard]] std::int32_t num_buckets() const { return num_buckets_; }
  [[nodiscard]] std::int32_t bucket_of_index(std::size_t i) const { return bucket_[i]; }
  /// Recompute one bucket aggregate from scratch (test oracle).
  [[nodiscard]] linalg::Vec recompute_aggregate(std::int32_t bucket) const;
  /// Bucket representatives (test oracle): returns (tau_rep, z_rep).
  [[nodiscard]] std::pair<double, double> bucket_reps(std::int32_t bucket) const;

 private:
  [[nodiscard]] std::int32_t tau_class(double tau) const;
  [[nodiscard]] std::int32_t z_class(double z) const;
  [[nodiscard]] std::int32_t flat_bucket(double tau, double z) const;
  void add_to_aggregate(std::size_t i, double coeff);

  const linalg::IncidenceOp* a_;
  GradientOptions opts_;
  linalg::Vec g_, tau_, z_;
  std::int32_t num_tau_classes_ = 0;
  std::int32_t num_z_classes_ = 0;
  std::int32_t num_buckets_ = 0;
  std::vector<std::int32_t> bucket_;       // per coordinate
  std::vector<std::int64_t> bucket_size_;  // per bucket
  std::vector<linalg::Vec> aggregate_;     // per bucket: A^T G 1_I ∈ R^n
  double psi_ = 0.0;
};

class GradientAccumulator {
 public:
  GradientAccumulator(linalg::Vec x_init, linalg::Vec g, std::vector<std::int32_t> bucket,
                      std::int32_t num_buckets, linalg::Vec accuracy);

  void scale(const std::vector<std::size_t>& idx, const linalg::Vec& a);
  void move(const std::vector<std::size_t>& idx, const std::vector<std::int32_t>& bucket);
  void set_accuracy(const std::vector<std::size_t>& idx, const linalg::Vec& acc);

  struct QueryResult {
    const linalg::Vec* approx;         ///< pointer to x̄
    std::vector<std::size_t> changed;  ///< coordinates refreshed this call
  };
  /// Accumulate one step: x += G * (per-bucket s) + h (h sparse: idx/val).
  QueryResult query(const linalg::Vec& s, const std::vector<std::size_t>& h_idx,
                    const linalg::Vec& h_val);

  [[nodiscard]] linalg::Vec compute_exact() const;
  [[nodiscard]] const linalg::Vec& approx() const { return x_bar_; }

 private:
  void refresh(std::size_t i);   ///< fold pending bucket drift into x̄_i
  void rearm(std::size_t i);     ///< (re)insert i's triggers
  void disarm(std::size_t i);

  linalg::Vec x_bar_;
  linalg::Vec g_;
  linalg::Vec accuracy_;
  std::vector<std::int32_t> bucket_;
  linalg::Vec f_;                           // cumulative per-bucket offsets
  linalg::Vec base_;                        // f_{bucket(i)} at i's last refresh
  // Trigger sets per bucket: ordered by threshold so violated prefixes pop.
  std::vector<std::multiset<std::pair<double, std::size_t>>> high_;
  std::vector<std::multiset<std::pair<double, std::size_t>>> low_;
};

class PrimalGradientMaintenance {
 public:
  PrimalGradientMaintenance(const linalg::IncidenceOp& a, linalg::Vec x_init, linalg::Vec g,
                            linalg::Vec tau, linalg::Vec z, linalg::Vec accuracy,
                            GradientOptions opts = {});

  /// UPDATE of Theorem D.1: g, τ̃, z at idx.
  void update(const std::vector<std::size_t>& idx, const linalg::Vec& b, const linalg::Vec& c,
              const linalg::Vec& d);
  void set_accuracy(const std::vector<std::size_t>& idx, const linalg::Vec& acc);

  /// QUERYPRODUCT: returns A^T G ∇Ψ(z̄)^♭(τ̄); remembers s for QuerySum.
  [[nodiscard]] linalg::Vec query_product();
  /// QUERYSUM: advances x by the remembered bucket step (times `step_scale`,
  /// e.g. the IPM's -γ) plus sparse h.
  GradientAccumulator::QueryResult query_sum(const std::vector<std::size_t>& h_idx,
                                             const linalg::Vec& h_val,
                                             double step_scale = 1.0);
  [[nodiscard]] linalg::Vec compute_exact_sum() const { return accumulator_.compute_exact(); }
  [[nodiscard]] double potential() const { return reduction_.potential(); }

 private:
  GradientReduction reduction_;
  GradientAccumulator accumulator_;
  linalg::Vec last_s_;
};

}  // namespace pmcf::ds
