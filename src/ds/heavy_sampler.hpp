#pragma once
// HeavySampler (Theorem E.2, Algorithm 10): the random diagonal matrix R
// used to sparsify the primal step (eq. (5)). Each row i is kept with
// probability at least
//   min{1, C1 (m/√n) (GAh)_i² / ||GAh||² + C2/√n + C3 n τ_i/||τ||_1},
// and R_{i,i} = 1/p_i so that E[R] = I. Composes three samplers:
// HeavyHitter ℓ2-sampling, a uniform m/√n Bernoulli, and the τ-sampler.

#include <cstdint>
#include <memory>
#include <vector>

#include "ds/heavy_hitter.hpp"
#include "ds/tau_sampler.hpp"
#include "graph/digraph.hpp"
#include "linalg/kernels.hpp"
#include "parallel/rng.hpp"

namespace pmcf::ds {

struct HeavySamplerOptions {
  double c1 = 1.0;
  double c2 = 1.0;
  double c3 = 1.0;
  std::uint64_t seed = 23;
  HeavyHitterOptions hh;
};

class HeavySampler {
 public:
  /// One entry of the sampled diagonal.
  struct Entry {
    std::size_t index;
    double inv_prob;  ///< R_{i,i} = 1/p_i
  };

  /// `ctx` scopes fault injection inside the composed HeavyHitter to the
  /// owning solve; it must outlive this structure.
  HeavySampler(core::SolverContext& ctx, const graph::Digraph& g, linalg::Vec weights,
               linalg::Vec tau, HeavySamplerOptions opts = {});

  /// g_i <- a_i, tau_i <- b_i for i in idx.
  void scale(const std::vector<std::size_t>& idx, const linalg::Vec& a, const linalg::Vec& b);

  /// Draw R for direction h (vertex potentials; dropped coordinate 0).
  [[nodiscard]] std::vector<Entry> sample(const linalg::Vec& h);

 private:
  const graph::Digraph* g_;
  HeavySamplerOptions opts_;
  HeavyHitter hh_;
  TauSampler tau_sampler_;
  par::Rng rng_;
  std::size_t m_;
  std::size_t n_;
};

}  // namespace pmcf::ds
