#include "ds/tau_sampler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parallel/scheduler.hpp"

namespace pmcf::ds {

TauSampler::TauSampler(std::vector<double> tau, std::size_t n, std::uint64_t seed)
    : tau_(std::move(tau)), n_(n), rng_(seed) {
  const std::size_t m = tau_.size();
  bucket_.assign(m, 0);
  members_.assign(static_cast<std::size_t>(kMaxExp - kMinExp + 1), {});
  position_.assign(1, {});  // unused dimension kept minimal
  position_[0].assign(m, -1);
  for (std::size_t i = 0; i < m; ++i) {
    assert(tau_[i] > 0.0);
    const std::int32_t b = bucket_of(tau_[i]);
    bucket_[i] = b;
    position_[0][i] = static_cast<std::int32_t>(members_[static_cast<std::size_t>(b - kMinExp)].size());
    members_[static_cast<std::size_t>(b - kMinExp)].push_back(i);
    tau_sum_ += tau_[i];
  }
  par::charge(m, par::ceil_log2(std::max<std::size_t>(m, 2)));
}

std::int32_t TauSampler::bucket_of(double t) const {
  const auto b = static_cast<std::int32_t>(std::floor(std::log2(t)));
  return std::clamp(b, kMinExp, kMaxExp);
}

void TauSampler::scale(const std::vector<std::size_t>& idx, const std::vector<double>& a) {
  assert(idx.size() == a.size());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const std::size_t i = idx[k];
    tau_sum_ += a[k] - tau_[i];
    tau_[i] = a[k];
    const std::int32_t nb = bucket_of(a[k]);
    if (nb == bucket_[i]) continue;
    // Swap-remove from the old bucket.
    auto& old_list = members_[static_cast<std::size_t>(bucket_[i] - kMinExp)];
    const auto pos = static_cast<std::size_t>(position_[0][i]);
    if (pos + 1 != old_list.size()) {
      old_list[pos] = old_list.back();
      position_[0][old_list[pos]] = static_cast<std::int32_t>(pos);
    }
    old_list.pop_back();
    bucket_[i] = nb;
    auto& new_list = members_[static_cast<std::size_t>(nb - kMinExp)];
    position_[0][i] = static_cast<std::int32_t>(new_list.size());
    new_list.push_back(i);
  }
  par::charge(idx.size() + 1, par::ceil_log2(idx.size() + 2));
}

double TauSampler::bucket_prob(std::int32_t b, double k) const {
  // Every member of bucket b is sampled with the bucket's upper-bound rate
  // p = min(1, K n 2^{b+1} / ||τ||_1) >= K n τ_i / ||τ||_1.
  const double upper = std::ldexp(1.0, b + 1);
  return std::min(1.0, k * static_cast<double>(n_) * upper / std::max(tau_sum_, 1e-300));
}

std::vector<std::size_t> TauSampler::sample(double k) {
  std::vector<std::size_t> out;
  for (std::int32_t b = kMinExp; b <= kMaxExp; ++b) {
    const auto& list = members_[static_cast<std::size_t>(b - kMinExp)];
    if (list.empty()) continue;
    const double p = bucket_prob(b, k);
    if (p <= 0.0) continue;
    if (p >= 1.0) {
      out.insert(out.end(), list.begin(), list.end());
      continue;
    }
    // Geometric skipping: work proportional to the number of hits.
    const double log1mp = std::log1p(-p);
    double j = -1.0;
    for (;;) {
      double u = rng_.next_double();
      while (u <= 0.0) u = rng_.next_double();
      j += 1.0 + std::floor(std::log(u) / log1mp);
      if (j >= static_cast<double>(list.size())) break;
      out.push_back(list[static_cast<std::size_t>(j)]);
    }
  }
  par::charge(out.size() + static_cast<std::size_t>(kMaxExp - kMinExp + 1),
              par::ceil_log2(out.size() + 2));
  return out;
}

double TauSampler::probability(std::size_t i, double k) const {
  return bucket_prob(bucket_[i], k);
}

}  // namespace pmcf::ds
