#include "ds/flat_norm.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/scheduler.hpp"

namespace pmcf::ds {

namespace {

using linalg::Vec;

/// Best objective for a fixed ||w||_∞ budget beta (and the induced
/// ||w||_τ budget r); fills `w` if non-null.
double inner_value(const Vec& v, const Vec& tau, double beta, double r, Vec* w) {
  const std::size_t m = v.size();
  if (beta <= 0.0 || r <= 0.0) {
    if (w != nullptr) w->assign(m, 0.0);
    return 0.0;
  }
  // Find λ with Σ τ_i min(β, λ|v_i|/τ_i)² = r² (monotone in λ).
  auto tau_norm_sq = [&](double lambda) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double wi = std::min(beta, lambda * std::abs(v[i]) / tau[i]);
      acc += tau[i] * wi * wi;
    }
    return acc;
  };
  // Upper bound for λ: everything clipped at β.
  double lo = 0.0, hi = 1.0;
  while (tau_norm_sq(hi) < r * r) {
    hi *= 2.0;
    if (hi > 1e30) break;  // all entries clipped; the cap β binds everywhere
  }
  for (int it = 0; it < 44; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (tau_norm_sq(mid) < r * r) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double lambda = 0.5 * (lo + hi);
  double val = 0.0;
  if (w != nullptr) w->assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double wi = std::min(beta, lambda * std::abs(v[i]) / tau[i]);
    const double signed_wi = v[i] >= 0.0 ? wi : -wi;
    val += v[i] * signed_wi;
    if (w != nullptr) (*w)[i] = signed_wi;
  }
  par::charge(46 * m, 46 + par::ceil_log2(std::max<std::size_t>(m, 2)));
  return val;
}

}  // namespace

FlatNormResult flat_norm_argmax(const Vec& v, const Vec& tau, double c_norm) {
  // Outer ternary search over beta in [0, 1]; objective is unimodal in the
  // budget split (it is the support function of a convex body sliced along
  // a line of feasible splits).
  auto value_at = [&](double beta) {
    return inner_value(v, tau, beta, (1.0 - beta) / c_norm, nullptr);
  };
  double lo = 0.0, hi = 1.0;
  for (int it = 0; it < 32; ++it) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (value_at(m1) < value_at(m2)) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  const double beta = 0.5 * (lo + hi);
  FlatNormResult res;
  res.value = inner_value(v, tau, beta, (1.0 - beta) / c_norm, &res.w);
  return res;
}

}  // namespace pmcf::ds
