#include "ds/lewis_maintenance.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/accel_cache.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lewis.hpp"
#include "linalg/sdd_solver.hpp"
#include "parallel/scheduler.hpp"

namespace pmcf::ds {

namespace {
using linalg::Vec;
}

LeverageMaintenance::LeverageMaintenance(core::SolverContext& ctx, const linalg::IncidenceOp& a,
                                         Vec v, Vec z, LeverageMaintenanceOptions opts)
    : ctx_(&ctx), a_(&a), opts_(opts), v_(std::move(v)), z_(std::move(z)), rng_(opts.seed) {
  period_ = opts_.period > 0
                ? opts_.period
                : static_cast<std::int32_t>(std::ceil(std::sqrt(static_cast<double>(a.cols()))));
  dirty_flag_.assign(a.rows(), 0);
  rebuild();
}

void LeverageMaintenance::rebuild() {
  const std::size_t m = a_->rows();
  // 0 = "preset's sketch width", same resolution rule as leverage_scores.
  const auto k = static_cast<std::size_t>(
      opts_.leverage.sketch_dim > 0 ? opts_.leverage.sketch_dim
                                    : ctx_->ingredients().sketch.sketch_dim);
  // Normalize scale (leverage scores are scale invariant).
  const double vmax = std::max(linalg::norm_inf(v_), 1e-300);
  const Vec vn = linalg::scale(v_, 1.0 / vmax);
  const Vec w = linalg::mul(vn, vn);
  // Shared assembly/preconditioner cache: rebuilds happen every few robust
  // steps against slowly drifting weights, so the pattern refresh + cached
  // factor amortize well here too. All k sketch solves share one blocked CG.
  linalg::AccelCache& cache = linalg::accel_cache(*ctx_);
  const linalg::Csr& lap = cache.laplacian(*ctx_, a_->graph(), w, a_->dropped());
  const linalg::SddPreconditioner& precond =
      cache.preconditioner(*ctx_, linalg::AccelSite::kLewisMaint, lap, w);
  projections_.assign(k, Vec());
  const double inv_sqrt_k = 1.0 / std::sqrt(static_cast<double>(k));
  std::vector<Vec> rhs(k);
  for (std::size_t r = 0; r < k; ++r) {
    Vec jr(m);
    for (std::size_t e = 0; e < m; ++e) jr[e] = rng_.rademacher() * inv_sqrt_k;
    rhs[r] = a_->apply_transpose(linalg::mul(vn, jr));
    rhs[r][static_cast<std::size_t>(a_->dropped())] = 0.0;
  }
  const auto sols = linalg::solve_sdd_multi(*ctx_, lap, rhs, precond, opts_.leverage.solve);
  for (std::size_t r = 0; r < k; ++r) {
    // Cache A y_r scaled back: projections are in normalized units, matching
    // estimate_entry's use of v_i / vmax.
    projections_[r] = a_->apply(sols[r].x);
  }
  norm_scale_ = vmax;
  sigma_bar_.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) sigma_bar_[i] = estimate_entry(i);
  dirty_.clear();
  std::fill(dirty_flag_.begin(), dirty_flag_.end(), 0);
  t_ = 0;
  drift_ = 0.0;
  par::charge(k * m, par::ceil_log2(std::max<std::size_t>(m, 2)));
}

double LeverageMaintenance::estimate_entry(std::size_t i) const {
  double acc = 0.0;
  const double vi = v_[i] / norm_scale_;
  for (const Vec& proj : projections_) {
    const double t = vi * proj[i];
    acc += t * t;
  }
  par::charge(projections_.size(), 1);
  return std::clamp(acc, 0.0, 1.0) + z_[i];
}

void LeverageMaintenance::scale(const std::vector<std::size_t>& idx, const Vec& c) {
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const double old = std::max(std::abs(v_[idx[k]]), 1e-12);
    drift_ += std::abs(c[k] - v_[idx[k]]) / old;
    v_[idx[k]] = c[k];
    if (!dirty_flag_[idx[k]]) {
      dirty_flag_[idx[k]] = 1;
      dirty_.push_back(idx[k]);
    }
  }
  par::charge(idx.size() + 1, par::ceil_log2(idx.size() + 2));
}

LeverageMaintenance::QueryResult LeverageMaintenance::query() {
  QueryResult res;
  ++t_;
  if (t_ >= period_ || drift_ > opts_.drift_budget) {
    rebuild();
    res.rebuilt = true;
    res.changed.resize(sigma_bar_.size());
    for (std::size_t i = 0; i < res.changed.size(); ++i) res.changed[i] = i;
    res.approx = &sigma_bar_;
    return res;
  }
  for (const std::size_t i : dirty_) {
    const double fresh = estimate_entry(i);
    if (std::abs(fresh - sigma_bar_[i]) > 0.1 * opts_.eps * std::max(sigma_bar_[i], 1e-9)) {
      sigma_bar_[i] = fresh;
      res.changed.push_back(i);
    }
    dirty_flag_[i] = 0;
  }
  dirty_.clear();
  res.approx = &sigma_bar_;
  par::charge(res.changed.size() + 1, par::ceil_log2(res.changed.size() + 2));
  return res;
}

LewisMaintenance::LewisMaintenance(core::SolverContext& ctx, const linalg::IncidenceOp& a, Vec g,
                                   Vec z, LewisMaintenanceOptions opts)
    : a_(&a),
      opts_(opts),
      expo_(0.5 - 1.0 / (opts.p > 0.0 ? opts.p : linalg::lewis_p(a.rows(), a.cols()))),
      g_(std::move(g)),
      z_(std::move(z)),
      tau_bar_(a.rows(), 1.0),
      leverage_(ctx, a,
                [&] {
                  // Initial scaling uses τ = 1: v = τ^{1/2-1/p} g = g.
                  return g_;
                }(),
                z_, opts.leverage) {
  // A few warm-up fixed-point rounds to land near the Lewis fixed point.
  for (int round = 0; round < 2; ++round) {
    Vec scaled(g_.size());
    for (std::size_t i = 0; i < g_.size(); ++i)
      scaled[i] = std::pow(tau_bar_[i], expo_) * g_[i];
    std::vector<std::size_t> all(g_.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    leverage_.scale(all, scaled);
    const auto q = leverage_.query();
    for (std::size_t i = 0; i < tau_bar_.size(); ++i) tau_bar_[i] = (*q.approx)[i];
  }
}

void LewisMaintenance::scale(const std::vector<std::size_t>& idx, const Vec& b) {
  Vec scaled(idx.size());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    g_[idx[k]] = b[k];
    scaled[k] = std::pow(tau_bar_[idx[k]], expo_) * b[k];
  }
  leverage_.scale(idx, scaled);
}

LewisMaintenance::QueryResult LewisMaintenance::query() {
  const auto lq = leverage_.query();
  QueryResult res;
  // One warm-started fixed-point application on the touched entries.
  std::vector<std::size_t> rescale_idx;
  Vec rescale_val;
  for (const std::size_t i : lq.changed) {
    const double fresh = (*lq.approx)[i];
    if (std::abs(fresh - tau_bar_[i]) > 0.1 * opts_.eps * std::max(tau_bar_[i], 1e-9)) {
      tau_bar_[i] = fresh;
      res.changed.push_back(i);
      rescale_idx.push_back(i);
      rescale_val.push_back(std::pow(tau_bar_[i], expo_) * g_[i]);
    }
  }
  if (!rescale_idx.empty()) leverage_.scale(rescale_idx, rescale_val);
  res.approx = &tau_bar_;
  par::charge(lq.changed.size() + 1, par::ceil_log2(lq.changed.size() + 2));
  return res;
}

}  // namespace pmcf::ds
