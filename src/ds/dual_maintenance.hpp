#pragma once
// Dual maintenance (Theorem E.1, Algorithm 9).
//
// Maintains v^(t) = v_init + A Σ_k h^(k) implicitly and an explicit
// approximation v̄ with ||w^{-1}(v̄ - v^(t))||_∞ <= ε, returning after each
// ADD the set of indices whose v̄ changed. Drift detection uses log T dyadic
// accumulators f^(j) = Σ of the last 2^j step vectors, each checked by a
// HeavyHitter (Lemma B.1) with row weights 1/w every 2^j steps — so an entry
// is re-read as soon as any dyadic window moved it by > 0.2 w_i ε / log T.
// Every T = Θ(√n) steps the structure reinitializes (amortized Õ(m/√n)).

#include <cstdint>
#include <memory>
#include <vector>

#include "ds/heavy_hitter.hpp"
#include "graph/digraph.hpp"
#include "linalg/incidence.hpp"
#include "linalg/kernels.hpp"

namespace pmcf::ds {

struct DualMaintenanceOptions {
  double eps = 0.05;
  std::int32_t period = 0;  ///< T; 0 => 2^ceil(log2(sqrt(n)))
  HeavyHitterOptions hh;
};

class DualMaintenance {
 public:
  /// `ctx` scopes fault injection inside the drift-detection HeavyHitters to
  /// the owning solve; it must outlive this structure.
  DualMaintenance(core::SolverContext& ctx, const graph::Digraph& g, linalg::Vec v_init,
                  linalg::Vec w, DualMaintenanceOptions opts = {});

  struct AddResult {
    const linalg::Vec* approx;          ///< pointer to v̄
    std::vector<std::size_t> changed;   ///< indices updated this call
  };

  /// Accumulate one step h ∈ R^n (the dropped coordinate must be 0).
  AddResult add(const linalg::Vec& h);

  /// w_i <- delta_i for i in idx (accuracy change forces re-verification).
  void set_accuracy(const std::vector<std::size_t>& idx, const linalg::Vec& delta);

  /// The exact v^(t) (O(m) work).
  [[nodiscard]] linalg::Vec compute_exact() const;

  [[nodiscard]] const linalg::Vec& approx() const { return v_bar_; }
  [[nodiscard]] std::int32_t steps() const { return t_; }

 private:
  void reinitialize(linalg::Vec v_init);
  std::vector<std::size_t> verify(const std::vector<std::size_t>& idx);

  core::SolverContext* ctx_;
  const graph::Digraph* g_;
  linalg::IncidenceOp a_;
  DualMaintenanceOptions opts_;
  std::int32_t period_ = 0;
  std::int32_t levels_ = 0;

  linalg::Vec v_init_;
  linalg::Vec w_;
  linalg::Vec v_bar_;
  linalg::Vec f_hat_;                       // Σ h since reinit
  std::vector<linalg::Vec> f_level_;        // dyadic window sums
  std::vector<std::vector<std::size_t>> pending_;  // F_j: deferred re-checks
  std::unique_ptr<HeavyHitter> hh_;
  std::int32_t t_ = 0;
};

}  // namespace pmcf::ds
