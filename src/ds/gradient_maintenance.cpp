#include "ds/gradient_maintenance.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parallel/scheduler.hpp"

namespace pmcf::ds {

namespace {
using linalg::Vec;
}

// ---------------- GradientReduction ----------------

GradientReduction::GradientReduction(const linalg::IncidenceOp& a, Vec g, Vec tau, Vec z,
                                     GradientOptions opts)
    : a_(&a), opts_(opts), g_(std::move(g)), tau_(std::move(tau)), z_(std::move(z)) {
  const std::size_t m = a.rows();
  assert(g_.size() == m && tau_.size() == m && z_.size() == m);
  // τ classes: (1-ε)^{k+1} <= τ <= (1-ε)^k for τ in [n/m / 2, 2].
  const double tau_min = 0.25 * static_cast<double>(a.cols()) / static_cast<double>(m);
  num_tau_classes_ =
      static_cast<std::int32_t>(std::ceil(std::log(tau_min / 2.0) / std::log(1.0 - opts_.eps))) + 2;
  num_z_classes_ = static_cast<std::int32_t>(std::ceil(4.0 * opts_.z_max / opts_.eps)) + 2;
  num_buckets_ = num_tau_classes_ * num_z_classes_;

  bucket_.assign(m, 0);
  bucket_size_.assign(static_cast<std::size_t>(num_buckets_), 0);
  aggregate_.assign(static_cast<std::size_t>(num_buckets_), Vec());
  for (std::size_t i = 0; i < m; ++i) {
    bucket_[i] = flat_bucket(tau_[i], z_[i]);
    ++bucket_size_[static_cast<std::size_t>(bucket_[i])];
    add_to_aggregate(i, g_[i]);
    psi_ += std::cosh(opts_.lambda * z_[i]);
  }
  par::charge(m, par::ceil_log2(std::max<std::size_t>(m, 2)));
}

std::int32_t GradientReduction::tau_class(double tau) const {
  const double t = std::max(tau, 1e-12);
  const auto k = static_cast<std::int32_t>(std::floor(std::log(t / 2.0) / std::log(1.0 - opts_.eps)));
  return std::clamp(k, 0, num_tau_classes_ - 1);
}

std::int32_t GradientReduction::z_class(double z) const {
  const auto l = static_cast<std::int32_t>(std::floor((z + opts_.z_max) / (opts_.eps / 2.0)));
  return std::clamp(l, 0, num_z_classes_ - 1);
}

std::int32_t GradientReduction::flat_bucket(double tau, double z) const {
  return tau_class(tau) * num_z_classes_ + z_class(z);
}

std::pair<double, double> GradientReduction::bucket_reps(std::int32_t bucket) const {
  const std::int32_t k = bucket / num_z_classes_;
  const std::int32_t l = bucket % num_z_classes_;
  const double tau_rep = 2.0 * std::pow(1.0 - opts_.eps, k + 0.5);
  const double z_rep = -opts_.z_max + (static_cast<double>(l) + 0.5) * (opts_.eps / 2.0);
  return {tau_rep, z_rep};
}

void GradientReduction::add_to_aggregate(std::size_t i, double coeff) {
  auto& agg = aggregate_[static_cast<std::size_t>(bucket_[i])];
  if (agg.empty()) agg.assign(a_->cols(), 0.0);
  // Row i of A has exactly two non-zeros (±1); unit work per update.
  const auto& arc = a_->graph().arc(static_cast<graph::EdgeId>(i));
  const auto d = static_cast<std::size_t>(a_->dropped());
  if (static_cast<std::size_t>(arc.from) != d) agg[static_cast<std::size_t>(arc.from)] -= coeff;
  if (static_cast<std::size_t>(arc.to) != d) agg[static_cast<std::size_t>(arc.to)] += coeff;
  par::charge(2, 1);
}

std::vector<std::int32_t> GradientReduction::update(const std::vector<std::size_t>& idx,
                                                    const Vec& b, const Vec& c, const Vec& d) {
  std::vector<std::int32_t> out(idx.size());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const std::size_t i = idx[k];
    psi_ += std::cosh(opts_.lambda * d[k]) - std::cosh(opts_.lambda * z_[i]);
    add_to_aggregate(i, -g_[i]);
    --bucket_size_[static_cast<std::size_t>(bucket_[i])];
    g_[i] = b[k];
    tau_[i] = c[k];
    z_[i] = d[k];
    bucket_[i] = flat_bucket(tau_[i], z_[i]);
    ++bucket_size_[static_cast<std::size_t>(bucket_[i])];
    add_to_aggregate(i, g_[i]);
    out[k] = bucket_[i];
  }
  par::charge(idx.size() + 1, par::ceil_log2(idx.size() + 2));
  return out;
}

GradientReduction::QueryResult GradientReduction::query() const {
  // Low-dimensional representation: per *non-empty* bucket, the gradient of
  // Ψ at the z representative scaled by the bucket size, and the τ-norm
  // weight sqrt(|I| τ_rep)/C (Algorithm 6 lines 27-29). Only the occupied
  // buckets (at most min(m, K)) enter the K-dimensional maximizer.
  const auto kk = static_cast<std::size_t>(num_buckets_);
  std::vector<std::size_t> occupied;
  for (std::size_t bidx = 0; bidx < kk; ++bidx)
    if (bucket_size_[bidx] != 0) occupied.push_back(bidx);
  Vec x(occupied.size(), 0.0), v2(occupied.size(), 0.0);
  for (std::size_t t = 0; t < occupied.size(); ++t) {
    const std::size_t bidx = occupied[t];
    const auto [tau_rep, z_rep] = bucket_reps(static_cast<std::int32_t>(bidx));
    x[t] = static_cast<double>(bucket_size_[bidx]) * opts_.lambda *
           std::sinh(opts_.lambda * z_rep);
    const double v = std::sqrt(static_cast<double>(bucket_size_[bidx]) * tau_rep) / opts_.c_norm;
    v2[t] = v * v;
  }
  // s = argmax_{||v y||_2 + ||y||_inf <= 1} <x, y> — the mixed norm with
  // c_norm = 1 and weights v² (Corollary D.3).
  const auto fn = flat_norm_argmax(x, v2, 1.0);
  QueryResult res;
  res.s.assign(kk, 0.0);
  res.v.assign(a_->cols(), 0.0);
  for (std::size_t t = 0; t < occupied.size(); ++t) {
    const std::size_t bidx = occupied[t];
    res.s[bidx] = fn.w[t];
    if (aggregate_[bidx].empty() || fn.w[t] == 0.0) continue;
    for (std::size_t j = 0; j < res.v.size(); ++j) res.v[j] += fn.w[t] * aggregate_[bidx][j];
  }
  par::charge(occupied.size() * 4 + res.v.size(),
              par::ceil_log2(occupied.size() + res.v.size() + 2));
  return res;
}

Vec GradientReduction::recompute_aggregate(std::int32_t bucket) const {
  Vec agg(a_->cols(), 0.0);
  const auto d = static_cast<std::size_t>(a_->dropped());
  for (std::size_t i = 0; i < bucket_.size(); ++i) {
    if (bucket_[i] != bucket) continue;
    const auto& arc = a_->graph().arc(static_cast<graph::EdgeId>(i));
    if (static_cast<std::size_t>(arc.from) != d) agg[static_cast<std::size_t>(arc.from)] -= g_[i];
    if (static_cast<std::size_t>(arc.to) != d) agg[static_cast<std::size_t>(arc.to)] += g_[i];
  }
  return agg;
}

// ---------------- GradientAccumulator ----------------

GradientAccumulator::GradientAccumulator(Vec x_init, Vec g, std::vector<std::int32_t> bucket,
                                         std::int32_t num_buckets, Vec accuracy)
    : x_bar_(std::move(x_init)),
      g_(std::move(g)),
      accuracy_(std::move(accuracy)),
      bucket_(std::move(bucket)) {
  const std::size_t m = x_bar_.size();
  f_.assign(static_cast<std::size_t>(num_buckets), 0.0);
  base_.assign(m, 0.0);
  high_.assign(static_cast<std::size_t>(num_buckets), {});
  low_.assign(static_cast<std::size_t>(num_buckets), {});
  for (std::size_t i = 0; i < m; ++i) rearm(i);
  par::charge(m, par::ceil_log2(std::max<std::size_t>(m, 2)));
}

void GradientAccumulator::refresh(std::size_t i) {
  const auto b = static_cast<std::size_t>(bucket_[i]);
  x_bar_[i] += g_[i] * (f_[b] - base_[i]);
  base_[i] = f_[b];
}

void GradientAccumulator::rearm(std::size_t i) {
  const auto b = static_cast<std::size_t>(bucket_[i]);
  const double slack = std::abs(accuracy_[i] / (10.0 * (g_[i] == 0.0 ? 1e-12 : g_[i])));
  high_[b].insert({base_[i] + slack, i});
  low_[b].insert({base_[i] - slack, i});
}

void GradientAccumulator::disarm(std::size_t i) {
  const auto b = static_cast<std::size_t>(bucket_[i]);
  const double slack = std::abs(accuracy_[i] / (10.0 * (g_[i] == 0.0 ? 1e-12 : g_[i])));
  high_[b].erase(high_[b].find({base_[i] + slack, i}));
  low_[b].erase(low_[b].find({base_[i] - slack, i}));
}

void GradientAccumulator::scale(const std::vector<std::size_t>& idx, const Vec& a) {
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const std::size_t i = idx[k];
    disarm(i);
    refresh(i);
    g_[i] = a[k];
    rearm(i);
  }
  par::charge(idx.size() + 1, par::ceil_log2(idx.size() + 2));
}

void GradientAccumulator::move(const std::vector<std::size_t>& idx,
                               const std::vector<std::int32_t>& bucket) {
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const std::size_t i = idx[k];
    disarm(i);
    refresh(i);
    bucket_[i] = bucket[k];
    base_[i] = f_[static_cast<std::size_t>(bucket_[i])];
    rearm(i);
  }
  par::charge(idx.size() + 1, par::ceil_log2(idx.size() + 2));
}

void GradientAccumulator::set_accuracy(const std::vector<std::size_t>& idx, const Vec& acc) {
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const std::size_t i = idx[k];
    disarm(i);
    refresh(i);
    accuracy_[i] = acc[k];
    rearm(i);
  }
  par::charge(idx.size() + 1, par::ceil_log2(idx.size() + 2));
}

GradientAccumulator::QueryResult GradientAccumulator::query(const Vec& s,
                                                            const std::vector<std::size_t>& h_idx,
                                                            const Vec& h_val) {
  assert(s.size() == f_.size());
  std::vector<std::size_t> changed;
  for (std::size_t b = 0; b < f_.size(); ++b) f_[b] += s[b];
  par::charge(f_.size(), 1);

  // Sparse additive term h: refresh those coordinates and add h directly.
  for (std::size_t k = 0; k < h_idx.size(); ++k) {
    const std::size_t i = h_idx[k];
    disarm(i);
    refresh(i);
    x_bar_[i] += h_val[k];
    rearm(i);
    changed.push_back(i);
  }

  // Pop all violated triggers: f_b above a high threshold or below a low one.
  for (std::size_t b = 0; b < f_.size(); ++b) {
    while (!high_[b].empty() && high_[b].begin()->first < f_[b]) {
      const std::size_t i = high_[b].begin()->second;
      disarm(i);
      refresh(i);
      rearm(i);
      changed.push_back(i);
    }
    while (!low_[b].empty() && std::prev(low_[b].end())->first > f_[b]) {
      const std::size_t i = std::prev(low_[b].end())->second;
      disarm(i);
      refresh(i);
      rearm(i);
      changed.push_back(i);
    }
  }
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  par::charge(changed.size() + f_.size(), par::ceil_log2(changed.size() + 2));
  return {&x_bar_, std::move(changed)};
}

Vec GradientAccumulator::compute_exact() const {
  Vec out = x_bar_;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] += g_[i] * (f_[static_cast<std::size_t>(bucket_[i])] - base_[i]);
  par::charge(out.size(), 1);
  return out;
}

// ---------------- PrimalGradientMaintenance ----------------

PrimalGradientMaintenance::PrimalGradientMaintenance(const linalg::IncidenceOp& a, Vec x_init,
                                                     Vec g, Vec tau, Vec z, Vec accuracy,
                                                     GradientOptions opts)
    : reduction_(a, g, tau, z, opts),
      accumulator_(std::move(x_init), std::move(g),
                   [&] {
                     std::vector<std::int32_t> b(a.rows());
                     for (std::size_t i = 0; i < b.size(); ++i)
                       b[i] = reduction_.bucket_of_index(i);
                     return b;
                   }(),
                   reduction_.num_buckets(), std::move(accuracy)) {}

void PrimalGradientMaintenance::update(const std::vector<std::size_t>& idx, const Vec& b,
                                       const Vec& c, const Vec& d) {
  const auto buckets = reduction_.update(idx, b, c, d);
  accumulator_.scale(idx, b);
  accumulator_.move(idx, buckets);
}

void PrimalGradientMaintenance::set_accuracy(const std::vector<std::size_t>& idx,
                                             const Vec& acc) {
  accumulator_.set_accuracy(idx, acc);
}

Vec PrimalGradientMaintenance::query_product() {
  auto res = reduction_.query();
  last_s_ = std::move(res.s);
  return std::move(res.v);
}

GradientAccumulator::QueryResult PrimalGradientMaintenance::query_sum(
    const std::vector<std::size_t>& h_idx, const Vec& h_val, double step_scale) {
  Vec scaled = last_s_;
  for (auto& v : scaled) v *= step_scale;
  return accumulator_.query(scaled, h_idx, h_val);
}

}  // namespace pmcf::ds
