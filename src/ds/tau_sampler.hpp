#pragma once
// Parallel τ-sampler (Theorem A.3): maintain weights τ ∈ R^m_{>0} bucketed by
// powers of two; SAMPLE(K) returns each index i independently with
// probability >= K n τ_i / ||τ||_1 in work proportional to the output size
// (one binomial draw per bucket), PROBABILITY reports the exact per-index
// sampling probabilities.

#include <cstdint>
#include <vector>

#include "parallel/rng.hpp"

namespace pmcf::ds {

class TauSampler {
 public:
  TauSampler(std::vector<double> tau, std::size_t n, std::uint64_t seed);

  /// τ_i <- a_i for i in `idx`.
  void scale(const std::vector<std::size_t>& idx, const std::vector<double>& a);

  /// Each i included independently with prob >= min(1, K n τ_i / ||τ||_1).
  [[nodiscard]] std::vector<std::size_t> sample(double k);

  /// The probability with which index i is included by sample(k).
  [[nodiscard]] double probability(std::size_t i, double k) const;

  [[nodiscard]] double tau_sum() const { return tau_sum_; }
  [[nodiscard]] std::size_t size() const { return tau_.size(); }

 private:
  [[nodiscard]] std::int32_t bucket_of(double t) const;
  [[nodiscard]] double bucket_prob(std::int32_t b, double k) const;

  std::vector<double> tau_;
  std::vector<std::int32_t> bucket_;                 // per index
  std::vector<std::vector<std::size_t>> members_;    // per bucket: index list
  std::vector<std::vector<std::int32_t>> position_;  // inverse of members_
  double tau_sum_ = 0.0;
  std::size_t n_;
  par::Rng rng_;
  static constexpr std::int32_t kMinExp = -64;
  static constexpr std::int32_t kMaxExp = 64;
};

}  // namespace pmcf::ds
