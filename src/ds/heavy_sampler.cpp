#include "ds/heavy_sampler.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/scheduler.hpp"

namespace pmcf::ds {

namespace {
using linalg::Vec;
}

HeavySampler::HeavySampler(core::SolverContext& ctx, const graph::Digraph& g, Vec weights,
                           Vec tau, HeavySamplerOptions opts)
    : g_(&g),
      opts_(opts),
      hh_(ctx, g, std::move(weights), [&] {
        auto h = opts.hh;
        h.seed = opts.seed + 1;
        return h;
      }()),
      tau_sampler_(std::vector<double>(tau.begin(), tau.end()),
                   static_cast<std::size_t>(g.num_vertices()), opts.seed + 2),
      rng_(opts.seed),
      m_(static_cast<std::size_t>(g.num_arcs())),
      n_(static_cast<std::size_t>(g.num_vertices())) {}

void HeavySampler::scale(const std::vector<std::size_t>& idx, const Vec& a, const Vec& b) {
  hh_.scale(idx, a);
  tau_sampler_.scale(idx, std::vector<double>(b.begin(), b.end()));
}

std::vector<HeavySampler::Entry> HeavySampler::sample(const Vec& h) {
  const double sqrt_n = std::sqrt(static_cast<double>(n_));
  // Component samplers (each oversamples by 3x as in Algorithm 10).
  const auto i_u = tau_sampler_.sample(3.0 * opts_.c3);
  const auto i_v = hh_.sample(h, 3.0 * opts_.c1 * static_cast<double>(m_) / sqrt_n);
  std::vector<std::size_t> i_w;
  const double p_unif = std::min(3.0 * opts_.c2 / sqrt_n, 1.0);
  if (p_unif >= 1.0) {
    i_w.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) i_w[i] = i;
  } else if (p_unif > 0.0) {
    const double log1mp = std::log1p(-p_unif);
    double j = -1.0;
    for (;;) {
      double u = rng_.next_double();
      while (u <= 0.0) u = rng_.next_double();
      j += 1.0 + std::floor(std::log(u) / log1mp);
      if (j >= static_cast<double>(m_)) break;
      i_w.push_back(static_cast<std::size_t>(j));
    }
  }

  std::vector<std::size_t> merged;
  merged.reserve(i_u.size() + i_v.size() + i_w.size());
  merged.insert(merged.end(), i_u.begin(), i_u.end());
  merged.insert(merged.end(), i_v.begin(), i_v.end());
  merged.insert(merged.end(), i_w.begin(), i_w.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

  // Per-index probabilities under each component, then the thinning step of
  // Algorithm 10 line 24: keep i with min(1, u+v+w) / (1-(1-u)(1-v)(1-w)).
  const Vec pv = hh_.probability(merged, h, 3.0 * opts_.c1 * static_cast<double>(m_) / sqrt_n);
  std::vector<Entry> out;
  out.reserve(merged.size());
  for (std::size_t k = 0; k < merged.size(); ++k) {
    const std::size_t i = merged[k];
    const double u = tau_sampler_.probability(i, 3.0 * opts_.c3);
    const double v = pv[k];
    const double w = p_unif;
    const double target = std::min(1.0, u + v + w);
    const double hit = 1.0 - (1.0 - u) * (1.0 - v) * (1.0 - w);
    const double keep = hit > 0.0 ? std::min(target / hit, 1.0) : 1.0;
    if (rng_.next_double() < keep) out.push_back({i, 1.0 / target});
  }
  par::charge(merged.size() + 1, par::ceil_log2(merged.size() + 2));
  return out;
}

}  // namespace pmcf::ds
