#pragma once
// Dynamic leverage scores and regularized Lewis weights (Theorems C.2 / C.1).
//
// Contract-level implementation of Algorithms 4/5: the structures maintain
//   σ̄ ≈_ε σ(VA) + z      resp.      τ̄ ≈_ε τ(GA)
// under entrywise Scale updates, with amortized Õ(m/√n) work per Query.
// Mechanism (simplified from the paper's JL + dyadic HeavyHitter machinery,
// justified by the same slow-drift conditions (10)-(14)):
//   - cached JL projection vectors y_r give σ_i ≈ Σ_r (v_i (A y_r)_i)² in
//     O(k) work per entry;
//   - Scale marks entries dirty; Query re-evaluates only dirty entries
//     against the cached projections (first-order accurate for slow drift);
//   - every T = Θ(√n) queries the projections and all entries are rebuilt
//     (the paper's periodic re-initialization), amortizing to Õ(m/√n).

#include <cstdint>
#include <vector>

#include "linalg/incidence.hpp"
#include "linalg/leverage.hpp"
#include "linalg/kernels.hpp"
#include "parallel/rng.hpp"

namespace pmcf::ds {

struct LeverageMaintenanceOptions {
  double eps = 0.1;
  std::int32_t period = 0;   ///< T; 0 => ceil(sqrt(n))
  /// Rebuild early once Σ |Δv_i|/v_i since the last rebuild exceeds this
  /// (cross-row leverage effects are only tracked through rebuilds; the
  /// paper's condition (14) bounds exactly this drift).
  double drift_budget = 0.1;
  linalg::LeverageOptions leverage;
  std::uint64_t seed = 29;
};

class LeverageMaintenance {
 public:
  /// `ctx` scopes the periodic-rebuild SDD solves (fault injection + PRAM
  /// accounting) to the owning solve; it must outlive this structure.
  LeverageMaintenance(core::SolverContext& ctx, const linalg::IncidenceOp& a, linalg::Vec v,
                      linalg::Vec z, LeverageMaintenanceOptions opts = {});

  /// v_i <- c_k for i = idx[k].
  void scale(const std::vector<std::size_t>& idx, const linalg::Vec& c);

  struct QueryResult {
    const linalg::Vec* approx;         ///< σ̄ (+ regularizer z)
    std::vector<std::size_t> changed;  ///< entries updated since last query
    bool rebuilt = false;
  };
  QueryResult query();

  [[nodiscard]] const linalg::Vec& approx() const { return sigma_bar_; }
  [[nodiscard]] std::int32_t queries() const { return t_; }

 private:
  void rebuild();
  [[nodiscard]] double estimate_entry(std::size_t i) const;

  core::SolverContext* ctx_;
  const linalg::IncidenceOp* a_;
  LeverageMaintenanceOptions opts_;
  std::int32_t period_;
  linalg::Vec v_, z_, sigma_bar_;
  std::vector<linalg::Vec> projections_;  ///< cached A y_r per sketch row
  double norm_scale_ = 1.0;               ///< v normalization at last rebuild
  std::vector<std::size_t> dirty_;
  std::vector<char> dirty_flag_;
  double drift_ = 0.0;
  par::Rng rng_;
  std::int32_t t_ = 0;
};

struct LewisMaintenanceOptions {
  double eps = 0.1;
  double p = 0.0;  ///< 0 => the IPM default 1 - 1/(4 log(4m/n))
  LeverageMaintenanceOptions leverage;
};

/// Theorem C.1: maintain τ̄ ≈_ε regularized Lewis weights of Diag(g)A under
/// Scale updates (warm-started fixed point over the leverage structure).
class LewisMaintenance {
 public:
  /// `ctx` threads through to the inner LeverageMaintenance.
  LewisMaintenance(core::SolverContext& ctx, const linalg::IncidenceOp& a, linalg::Vec g,
                   linalg::Vec z, LewisMaintenanceOptions opts = {});

  void scale(const std::vector<std::size_t>& idx, const linalg::Vec& b);

  struct QueryResult {
    const linalg::Vec* approx;         ///< τ̄
    std::vector<std::size_t> changed;  ///< entries whose τ̄ moved > ε/10
  };
  QueryResult query();

  [[nodiscard]] const linalg::Vec& approx() const { return tau_bar_; }

 private:
  const linalg::IncidenceOp* a_;
  LewisMaintenanceOptions opts_;
  double expo_;
  linalg::Vec g_, z_, tau_bar_;
  LeverageMaintenance leverage_;
};

}  // namespace pmcf::ds
