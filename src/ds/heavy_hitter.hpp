#pragma once
// HeavyHitter data structure (Lemma B.1 / Corollary B.2).
//
// Rows of Diag(g)·A (A the incidence matrix of a digraph) are grouped into
// weight buckets g_e ∈ [2^i, 2^{i+1}); each bucket maintains a dynamic
// expander decomposition of its (undirected view) edge set (Lemma 3.1).
// Because each cluster is an expander, an edge with |g_e (Ah)_e| >= ε must
// have an endpoint whose degree-shifted potential h'_v is >= ε/2^{i+2}, so
// HEAVYQUERY only scans the incident edges of those few vertices — work
// Õ(||Diag(g)Ah||² ε^{-2} + n log W) instead of O(m).
//
// SAMPLE / PROBABILITY / LEVERAGESCORESAMPLE implement the ℓ2-proportional
// and leverage-score-overestimate sampling of Lemma B.1 with work
// proportional to the expected output size.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "expander/dynamic_decomp.hpp"
#include "graph/digraph.hpp"
#include "linalg/kernels.hpp"
#include "parallel/rng.hpp"

namespace pmcf::core {
class SolverContext;
}

namespace pmcf::ds {

/// Options for HeavyHitter.
struct HeavyHitterOptions {
  double phi = 0.125;
  std::uint64_t seed = 17;
  expander::DynamicDecompOptions decomp;  ///< phi overwritten with `phi`
};

class HeavyHitter {
 public:
  using Options = HeavyHitterOptions;

  /// Rows indexed by arc id of `g` (held by reference; topology must outlive
  /// this object). `weights` = the diagonal g (non-negative). `ctx` scopes
  /// fault injection (kHeavyHitterMiss) to the owning solve.
  HeavyHitter(core::SolverContext& ctx, const graph::Digraph& g, linalg::Vec weights,
              Options opts = {});

  /// weights[idx[k]] <- vals[k]; moves rows between weight buckets.
  void scale(const std::vector<std::size_t>& idx, const linalg::Vec& vals);

  /// All arcs e with |g_e (Ah)_e| >= eps. `h` has one entry per vertex (set
  /// the dropped coordinate to 0 to model the reduced incidence matrix).
  [[nodiscard]] std::vector<std::size_t> heavy_query(const linalg::Vec& h, double eps);

  /// ℓ2-proportional sampling of Diag(g)Ah (Lemma B.1 SAMPLE).
  [[nodiscard]] std::vector<std::size_t> sample(const linalg::Vec& h, double big_k);

  /// Per-arc inclusion probabilities matching sample().
  [[nodiscard]] linalg::Vec probability(const std::vector<std::size_t>& idx, const linalg::Vec& h,
                                        double big_k) const;

  /// Leverage-score-overestimate sampling (Lemma B.1 LEVERAGESCORESAMPLE).
  [[nodiscard]] std::vector<std::size_t> leverage_sample(double k_prime);

  /// Per-arc inclusion probabilities matching leverage_sample().
  [[nodiscard]] linalg::Vec leverage_bound(const std::vector<std::size_t>& idx,
                                           double k_prime) const;

  [[nodiscard]] double weight(std::size_t e) const { return weights_[e]; }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t last_query_scans() const { return last_query_scans_; }

 private:
  struct Bucket {
    std::int32_t exponent = 0;
    std::unique_ptr<expander::DynamicExpanderDecomposition> decomp;
    std::size_t count = 0;
  };
  static std::int32_t exponent_of(double w);
  Bucket& bucket_for(std::int32_t exp);
  /// Normalization Σ_{clusters} 2^{2i} Σ_v h'_v² deg(v) used by sample().
  [[nodiscard]] double sample_mass(const linalg::Vec& h) const;
  [[nodiscard]] double vertex_sample_prob(const linalg::Vec& h, double big_k, std::size_t arc,
                                          double mass) const;

  core::SolverContext* ctx_;
  const graph::Digraph* g_;
  linalg::Vec weights_;
  Options opts_;
  std::unordered_map<std::int32_t, std::size_t> bucket_index_;
  std::vector<Bucket> buckets_;
  std::vector<std::int32_t> row_bucket_;  ///< exponent per arc; INT32_MIN = zero weight
  par::Rng rng_;
  std::uint64_t last_query_scans_ = 0;
};

}  // namespace pmcf::ds
