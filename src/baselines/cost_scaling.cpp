#include "baselines/cost_scaling.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "baselines/dinic.hpp"
#include "parallel/scheduler.hpp"

namespace pmcf::baselines {

namespace {

using graph::Vertex;

struct Net {
  // Residual arc 2k = forward of arc k, 2k+1 = backward.
  std::vector<std::int32_t> head;
  std::vector<std::int64_t> cap;   // residual capacity
  std::vector<std::int64_t> cost;  // scaled cost
  std::vector<std::vector<std::int32_t>> out;

  [[nodiscard]] Vertex tail(std::size_t a) const {
    return head[a ^ 1];
  }
};

}  // namespace

CostScalingResult cost_scaling_b_flow(const graph::Digraph& g,
                                      const std::vector<std::int64_t>& b) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const auto m = static_cast<std::size_t>(g.num_arcs());
  CostScalingResult res;

  // Feasibility pre-check: route demands by max flow.
  {
    graph::Digraph aug(g.num_vertices() + 2);
    const Vertex ss = g.num_vertices();
    const Vertex tt = ss + 1;
    std::int64_t demand_total = 0;
    for (const auto& a : g.arcs()) aug.add_arc(a.from, a.to, a.cap, 0);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const std::int64_t bv = b[static_cast<std::size_t>(v)];
      if (bv > 0) {
        aug.add_arc(v, tt, bv, 0);  // v must end with net inflow bv
        demand_total += bv;
      } else if (bv < 0) {
        aug.add_arc(ss, v, -bv, 0);
      }
    }
    const auto mf = dinic_max_flow(aug, ss, tt);
    if (mf.flow != demand_total) return res;  // infeasible
  }

  // Scale costs by (n+1): ε phases down to ε < 1 certify exact optimality.
  const auto scale = static_cast<std::int64_t>(n) + 1;
  Net net;
  net.head.resize(2 * m);
  net.cap.resize(2 * m);
  net.cost.resize(2 * m);
  net.out.assign(n, {});
  std::int64_t eps = 1;
  for (std::size_t k = 0; k < m; ++k) {
    const auto& a = g.arc(static_cast<graph::EdgeId>(k));
    net.head[2 * k] = a.to;
    net.cap[2 * k] = a.cap;
    net.cost[2 * k] = a.cost * scale;
    net.head[2 * k + 1] = a.from;
    net.cap[2 * k + 1] = 0;
    net.cost[2 * k + 1] = -a.cost * scale;
    net.out[static_cast<std::size_t>(a.from)].push_back(static_cast<std::int32_t>(2 * k));
    net.out[static_cast<std::size_t>(a.to)].push_back(static_cast<std::int32_t>(2 * k + 1));
    eps = std::max(eps, std::abs(net.cost[2 * k]));
  }

  std::vector<std::int64_t> p(n, 0);   // potentials
  std::vector<std::int64_t> ex(n, 0);  // excess = inflow - outflow - b
  auto reduced = [&](std::size_t a) {
    return net.cost[a] + p[static_cast<std::size_t>(net.tail(a))] -
           p[static_cast<std::size_t>(net.head[a])];
  };

  while (eps >= 1) {
    ++res.refine_phases;
    // REFINE: saturate all negative-reduced-cost residual arcs.
    for (std::size_t a = 0; a < 2 * m; ++a) {
      if (net.cap[a] > 0 && reduced(a) < 0) {
        const std::int64_t amount = net.cap[a];
        net.cap[a] = 0;
        net.cap[a ^ 1] += amount;
        ex[static_cast<std::size_t>(net.tail(a))] -= amount;
        ex[static_cast<std::size_t>(net.head[a])] += amount;
      }
    }
    // Demands enter as virtual excess once (fold b into ex lazily): excess
    // semantics here are ex(v) = inflow - outflow - b(v); initialize by
    // subtracting b in the first phase only.
    if (res.refine_phases == 1) {
      for (std::size_t v = 0; v < n; ++v) ex[v] -= b[v];
    }
    std::queue<Vertex> active;
    for (std::size_t v = 0; v < n; ++v)
      if (ex[v] > 0) active.push(static_cast<Vertex>(v));
    while (!active.empty()) {
      const Vertex v = active.front();
      active.pop();
      const auto vi = static_cast<std::size_t>(v);
      while (ex[vi] > 0) {
        bool pushed = false;
        for (const std::int32_t a32 : net.out[vi]) {
          const auto a = static_cast<std::size_t>(a32);
          if (net.cap[a] <= 0 || reduced(a) >= 0) continue;
          const std::int64_t amount = std::min(ex[vi], net.cap[a]);
          net.cap[a] -= amount;
          net.cap[a ^ 1] += amount;
          ex[vi] -= amount;
          const auto w = static_cast<std::size_t>(net.head[a]);
          if (ex[w] <= 0 && ex[w] + amount > 0) {
            // stays the same sign bucket; handled below
          }
          const bool was_inactive = ex[w] <= 0;
          ex[w] += amount;
          if (was_inactive && ex[w] > 0) active.push(static_cast<Vertex>(w));
          ++res.pushes;
          pushed = true;
          if (ex[vi] == 0) break;
        }
        if (ex[vi] == 0) break;
        if (!pushed) {
          // Relabel: lower p(v) to create an admissible arc.
          std::int64_t best = std::numeric_limits<std::int64_t>::max();
          for (const std::int32_t a32 : net.out[vi]) {
            const auto a = static_cast<std::size_t>(a32);
            if (net.cap[a] > 0) best = std::min(best, reduced(a));
          }
          if (best == std::numeric_limits<std::int64_t>::max()) return res;  // stuck
          p[vi] -= best + eps;
          ++res.relabels;
        }
      }
    }
    if (eps == 1) break;
    eps = std::max<std::int64_t>(eps / 2, 1);
  }

  res.feasible = true;
  res.arc_flow.assign(m, 0);
  for (std::size_t k = 0; k < m; ++k) {
    res.arc_flow[k] = net.cap[2 * k + 1];
    res.cost += res.arc_flow[k] * g.arc(static_cast<graph::EdgeId>(k)).cost;
  }
  par::charge(res.pushes + res.relabels + 2 * m, res.refine_phases * 4);
  return res;
}

CostScalingResult cost_scaling_max_flow(const graph::Digraph& g, Vertex s, Vertex t) {
  graph::Digraph core(g.num_vertices());
  std::int64_t cost_mass = 1;
  for (const auto& a : g.arcs()) {
    core.add_arc(a.from, a.to, a.cap, a.cost);
    cost_mass += std::abs(a.cost) * a.cap;
  }
  std::int64_t out_cap = 0;
  for (const auto& a : g.arcs())
    if (a.from == s) out_cap += a.cap;
  const graph::EdgeId ts = core.add_arc(t, s, std::max<std::int64_t>(out_cap, 1), -cost_mass);
  std::vector<std::int64_t> zero(static_cast<std::size_t>(core.num_vertices()), 0);
  CostScalingResult res = cost_scaling_b_flow(core, zero);
  if (!res.feasible) return res;
  // Report flow value through the return arc and cost over original arcs.
  res.flow_value = res.arc_flow[static_cast<std::size_t>(ts)];
  res.arc_flow.resize(static_cast<std::size_t>(g.num_arcs()));
  res.cost = 0;
  for (std::size_t k = 0; k < res.arc_flow.size(); ++k)
    res.cost += res.arc_flow[k] * g.arc(static_cast<graph::EdgeId>(k)).cost;
  return res;
}

}  // namespace pmcf::baselines
