#pragma once
// Hopcroft-Karp bipartite maximum matching — the combinatorial oracle for
// Corollary 1.3.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace pmcf::baselines {

struct MatchingResult {
  std::int64_t size = 0;
  /// match_left[l] = right vertex (in 0..nr-1) or -1.
  std::vector<std::int32_t> match_left;
};

/// `g` must be a bipartite digraph with arcs l -> (nl + r) as produced by
/// graph::random_bipartite.
MatchingResult hopcroft_karp(const graph::Digraph& g, graph::Vertex nl, graph::Vertex nr);

}  // namespace pmcf::baselines
