#pragma once
// Successive shortest path min-cost max-flow with Johnson potentials — the
// exact sequential oracle every pmcf solver is validated against, and the
// combinatorial baseline row of Table 1 (left).

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace pmcf::baselines {

struct McmfResult {
  std::int64_t flow = 0;
  std::int64_t cost = 0;
  std::vector<std::int64_t> arc_flow;  ///< per original arc id
  bool has_negative_cycle = false;     ///< input had a negative cost cycle
};

inline constexpr std::int64_t kInfFlow = std::int64_t{1} << 60;

/// Min-cost max-flow from s to t (send at most `flow_limit`). Costs may be
/// negative as long as the residual graph has no negative cycle reachable in
/// the augmentation process (plain negative arcs are fine).
McmfResult ssp_min_cost_max_flow(const graph::Digraph& g, graph::Vertex s, graph::Vertex t,
                                 std::int64_t flow_limit = kInfFlow);

/// Min-cost circulation/b-flow: route demands b (sum zero; b[v] > 0 means v
/// supplies). Returns flow=total routed supply; cost of the routing.
/// Feasibility required (checked: flow == total supply).
McmfResult ssp_min_cost_b_flow(const graph::Digraph& g, const std::vector<std::int64_t>& b);

}  // namespace pmcf::baselines
