#include "baselines/hopcroft_karp.hpp"

#include <limits>
#include <functional>
#include <queue>

#include "parallel/scheduler.hpp"

namespace pmcf::baselines {

namespace {
using graph::Vertex;
constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max();
}  // namespace

MatchingResult hopcroft_karp(const graph::Digraph& g, Vertex nl, Vertex nr) {
  std::vector<std::vector<std::int32_t>> adj(static_cast<std::size_t>(nl));
  for (const auto& a : g.arcs())
    adj[static_cast<std::size_t>(a.from)].push_back(a.to - nl);

  std::vector<std::int32_t> match_l(static_cast<std::size_t>(nl), -1);
  std::vector<std::int32_t> match_r(static_cast<std::size_t>(nr), -1);
  std::vector<std::int32_t> dist(static_cast<std::size_t>(nl));

  auto bfs = [&] {
    std::queue<std::int32_t> q;
    bool found = false;
    for (std::int32_t l = 0; l < nl; ++l) {
      if (match_l[static_cast<std::size_t>(l)] < 0) {
        dist[static_cast<std::size_t>(l)] = 0;
        q.push(l);
      } else {
        dist[static_cast<std::size_t>(l)] = kInf;
      }
    }
    while (!q.empty()) {
      const std::int32_t l = q.front();
      q.pop();
      for (const std::int32_t r : adj[static_cast<std::size_t>(l)]) {
        const std::int32_t l2 = match_r[static_cast<std::size_t>(r)];
        if (l2 < 0) {
          found = true;
        } else if (dist[static_cast<std::size_t>(l2)] == kInf) {
          dist[static_cast<std::size_t>(l2)] = dist[static_cast<std::size_t>(l)] + 1;
          q.push(l2);
        }
      }
    }
    return found;
  };
  std::function<bool(std::int32_t)> dfs = [&](std::int32_t l) {
    for (const std::int32_t r : adj[static_cast<std::size_t>(l)]) {
      const std::int32_t l2 = match_r[static_cast<std::size_t>(r)];
      if (l2 < 0 ||
          (dist[static_cast<std::size_t>(l2)] == dist[static_cast<std::size_t>(l)] + 1 && dfs(l2))) {
        match_l[static_cast<std::size_t>(l)] = r;
        match_r[static_cast<std::size_t>(r)] = l;
        return true;
      }
    }
    dist[static_cast<std::size_t>(l)] = kInf;
    return false;
  };

  MatchingResult res;
  while (bfs()) {
    for (std::int32_t l = 0; l < nl; ++l)
      if (match_l[static_cast<std::size_t>(l)] < 0 && dfs(l)) ++res.size;
  }
  res.match_left = std::move(match_l);
  par::charge(static_cast<std::uint64_t>(g.num_arcs() + nl + nr), static_cast<std::uint64_t>(nl) + 1);
  return res;
}

}  // namespace pmcf::baselines
