#include "baselines/bellman_ford.hpp"

#include "parallel/scheduler.hpp"

namespace pmcf::baselines {

SsspResult bellman_ford(const graph::Digraph& g, graph::Vertex source) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  SsspResult res;
  res.dist.assign(n, SsspResult::kUnreachable);
  res.dist[static_cast<std::size_t>(source)] = 0;
  bool changed = true;
  for (std::size_t round = 0; round < n && changed; ++round) {
    changed = false;
    for (const auto& a : g.arcs()) {
      const auto u = static_cast<std::size_t>(a.from);
      const auto v = static_cast<std::size_t>(a.to);
      if (res.dist[u] >= SsspResult::kUnreachable) continue;
      if (res.dist[u] + a.cost < res.dist[v]) {
        res.dist[v] = res.dist[u] + a.cost;
        changed = true;
      }
    }
  }
  res.has_negative_cycle = changed;
  par::charge(static_cast<std::uint64_t>(g.num_arcs()) * n, n);
  return res;
}

}  // namespace pmcf::baselines
