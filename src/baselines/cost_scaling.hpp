#pragma once
// Goldberg-Tarjan cost-scaling min-cost flow — the classical ε-scaling
// comparator (the scaling framework the paper's related-work section cites
// via [GT89]). Solves min-cost b-flow by successive refinement: ε starts at
// C and halves; REFINE converts an ε-optimal pseudoflow into an
// (ε/2)-optimal flow with push/relabel on the admissible network.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace pmcf::baselines {

struct CostScalingResult {
  bool feasible = false;
  std::int64_t flow_value = 0;  ///< max-flow variant only
  std::int64_t cost = 0;
  std::vector<std::int64_t> arc_flow;  ///< per original arc
  std::int64_t refine_phases = 0;
  std::uint64_t pushes = 0;
  std::uint64_t relabels = 0;
};

/// Min-cost b-flow (b[v] = required net inflow, Σb = 0). Costs may be
/// negative; capacities non-negative integers.
CostScalingResult cost_scaling_b_flow(const graph::Digraph& g,
                                      const std::vector<std::int64_t>& b);

/// Min-cost max-flow via the return-arc reduction.
CostScalingResult cost_scaling_max_flow(const graph::Digraph& g, graph::Vertex s,
                                        graph::Vertex t);

}  // namespace pmcf::baselines
