#pragma once
// Dinic max-flow: the combinatorial max-flow oracle.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace pmcf::baselines {

struct MaxFlowResult {
  std::int64_t flow = 0;
  std::vector<std::int64_t> arc_flow;  ///< per original arc
};

MaxFlowResult dinic_max_flow(const graph::Digraph& g, graph::Vertex s, graph::Vertex t);

}  // namespace pmcf::baselines
