#include "baselines/dinic.hpp"

#include <algorithm>
#include <functional>
#include <queue>

#include "parallel/scheduler.hpp"

namespace pmcf::baselines {

namespace {
using graph::Vertex;
}

MaxFlowResult dinic_max_flow(const graph::Digraph& g, Vertex s, Vertex t) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const auto m = static_cast<std::size_t>(g.num_arcs());
  std::vector<std::int32_t> head(2 * m);
  std::vector<std::int64_t> cap(2 * m);
  std::vector<std::vector<std::int32_t>> out(n);
  for (std::size_t k = 0; k < m; ++k) {
    const auto& a = g.arc(static_cast<graph::EdgeId>(k));
    head[2 * k] = a.to;
    cap[2 * k] = a.cap;
    head[2 * k + 1] = a.from;
    cap[2 * k + 1] = 0;
    out[static_cast<std::size_t>(a.from)].push_back(static_cast<std::int32_t>(2 * k));
    out[static_cast<std::size_t>(a.to)].push_back(static_cast<std::int32_t>(2 * k + 1));
  }

  std::vector<std::int32_t> level(n);
  std::vector<std::size_t> iter(n);
  auto bfs = [&] {
    std::fill(level.begin(), level.end(), -1);
    std::queue<Vertex> q;
    q.push(s);
    level[static_cast<std::size_t>(s)] = 0;
    while (!q.empty()) {
      const Vertex v = q.front();
      q.pop();
      for (const std::int32_t a : out[static_cast<std::size_t>(v)]) {
        if (cap[static_cast<std::size_t>(a)] <= 0) continue;
        const auto w = static_cast<std::size_t>(head[static_cast<std::size_t>(a)]);
        if (level[w] < 0) {
          level[w] = level[static_cast<std::size_t>(v)] + 1;
          q.push(static_cast<Vertex>(w));
        }
      }
    }
    return level[static_cast<std::size_t>(t)] >= 0;
  };
  std::function<std::int64_t(Vertex, std::int64_t)> dfs = [&](Vertex v,
                                                              std::int64_t limit) -> std::int64_t {
    if (v == t) return limit;
    const auto vi = static_cast<std::size_t>(v);
    for (; iter[vi] < out[vi].size(); ++iter[vi]) {
      const std::int32_t a = out[vi][iter[vi]];
      const auto w = head[static_cast<std::size_t>(a)];
      if (cap[static_cast<std::size_t>(a)] <= 0 ||
          level[static_cast<std::size_t>(w)] != level[vi] + 1)
        continue;
      const std::int64_t pushed =
          dfs(w, std::min(limit, cap[static_cast<std::size_t>(a)]));
      if (pushed > 0) {
        cap[static_cast<std::size_t>(a)] -= pushed;
        cap[static_cast<std::size_t>(a ^ 1)] += pushed;
        return pushed;
      }
    }
    return 0;
  };

  MaxFlowResult res;
  while (bfs()) {
    std::fill(iter.begin(), iter.end(), 0);
    while (const std::int64_t pushed = dfs(s, std::int64_t{1} << 60)) res.flow += pushed;
  }
  res.arc_flow.assign(m, 0);
  for (std::size_t k = 0; k < m; ++k) res.arc_flow[k] = cap[2 * k + 1];
  par::charge(2 * m * (n + 1), n);
  return res;
}

}  // namespace pmcf::baselines
