#pragma once
// Bellman-Ford single-source shortest paths with negative arc support — the
// oracle for Corollary 1.4.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace pmcf::baselines {

struct SsspResult {
  /// dist[v] or kUnreachable.
  std::vector<std::int64_t> dist;
  bool has_negative_cycle = false;
  static constexpr std::int64_t kUnreachable = std::int64_t{1} << 60;
};

SsspResult bellman_ford(const graph::Digraph& g, graph::Vertex source);

}  // namespace pmcf::baselines
