#include "baselines/ssp.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/deadline.hpp"
#include "parallel/scheduler.hpp"

namespace pmcf::baselines {

namespace {

using graph::Vertex;

constexpr std::int64_t kInfCost = std::numeric_limits<std::int64_t>::max() / 4;

struct Residual {
  // Forward/backward residual arcs: arc 2k is arc k of g, arc 2k+1 its reverse.
  std::vector<std::int32_t> head;
  std::vector<std::int64_t> cap;
  std::vector<std::int64_t> cost;
  std::vector<std::vector<std::int32_t>> out;  // per-vertex arc ids

  explicit Residual(const graph::Digraph& g) : out(static_cast<std::size_t>(g.num_vertices())) {
    const auto m = static_cast<std::size_t>(g.num_arcs());
    head.resize(2 * m);
    cap.resize(2 * m);
    cost.resize(2 * m);
    for (std::size_t k = 0; k < m; ++k) {
      const auto& a = g.arc(static_cast<graph::EdgeId>(k));
      head[2 * k] = a.to;
      cap[2 * k] = a.cap;
      cost[2 * k] = a.cost;
      head[2 * k + 1] = a.from;
      cap[2 * k + 1] = 0;
      cost[2 * k + 1] = -a.cost;
      out[static_cast<std::size_t>(a.from)].push_back(static_cast<std::int32_t>(2 * k));
      out[static_cast<std::size_t>(a.to)].push_back(static_cast<std::int32_t>(2 * k + 1));
    }
  }
};

/// Bellman-Ford on the residual graph; returns false on a reachable
/// negative cycle.
bool bellman_ford_residual(const Residual& r, std::size_t n, const std::vector<Vertex>& sources,
                           std::vector<std::int64_t>& dist) {
  dist.assign(n, kInfCost);
  for (const Vertex s : sources) dist[static_cast<std::size_t>(s)] = 0;
  for (std::size_t round = 0; round < n; ++round) {
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] >= kInfCost) continue;
      for (const std::int32_t a : r.out[v]) {
        if (r.cap[static_cast<std::size_t>(a)] <= 0) continue;
        const auto w = static_cast<std::size_t>(r.head[static_cast<std::size_t>(a)]);
        const std::int64_t nd = dist[v] + r.cost[static_cast<std::size_t>(a)];
        if (nd < dist[w]) {
          dist[w] = nd;
          changed = true;
        }
      }
    }
    if (!changed) return true;
  }
  return false;  // still changing after n rounds => negative cycle
}

}  // namespace

McmfResult ssp_min_cost_max_flow(const graph::Digraph& g, Vertex s, Vertex t,
                                 std::int64_t flow_limit) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  Residual r(g);
  McmfResult res;
  res.arc_flow.assign(static_cast<std::size_t>(g.num_arcs()), 0);

  // Initial potentials via Bellman-Ford (handles negative costs).
  std::vector<std::int64_t> pot;
  if (!bellman_ford_residual(r, n, {s}, pot)) {
    res.has_negative_cycle = true;
    return res;
  }
  for (auto& p : pot)
    if (p >= kInfCost) p = 0;  // unreachable: any finite potential works

  std::vector<std::int64_t> dist(n);
  std::vector<std::int32_t> pre_arc(n);
  while (res.flow < flow_limit) {
    // Cooperative lifecycle poll, once per augmentation (DESIGN.md §11). The
    // baseline has no status channel of its own; the mcf driver converts the
    // ComponentError back to kCanceled/kDeadlineExceeded.
    core::throw_if_expired("baselines::ssp");
    // Dijkstra with reduced costs.
    dist.assign(n, kInfCost);
    pre_arc.assign(n, -1);
    using Item = std::pair<std::int64_t, Vertex>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[static_cast<std::size_t>(s)] = 0;
    pq.push({0, s});
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d > dist[static_cast<std::size_t>(v)]) continue;
      for (const std::int32_t a : r.out[static_cast<std::size_t>(v)]) {
        if (r.cap[static_cast<std::size_t>(a)] <= 0) continue;
        const Vertex w = r.head[static_cast<std::size_t>(a)];
        const std::int64_t rc = r.cost[static_cast<std::size_t>(a)] +
                                pot[static_cast<std::size_t>(v)] - pot[static_cast<std::size_t>(w)];
        if (d + rc < dist[static_cast<std::size_t>(w)]) {
          dist[static_cast<std::size_t>(w)] = d + rc;
          pre_arc[static_cast<std::size_t>(w)] = a;
          pq.push({d + rc, w});
        }
      }
    }
    if (dist[static_cast<std::size_t>(t)] >= kInfCost) break;  // t unreachable: max flow reached
    for (std::size_t v = 0; v < n; ++v)
      if (dist[v] < kInfCost) pot[v] += dist[v];
    // Bottleneck along the path.
    std::int64_t push = flow_limit - res.flow;
    for (Vertex v = t; v != s;) {
      const std::int32_t a = pre_arc[static_cast<std::size_t>(v)];
      push = std::min(push, r.cap[static_cast<std::size_t>(a)]);
      v = r.head[static_cast<std::size_t>(a ^ 1)];
    }
    for (Vertex v = t; v != s;) {
      const std::int32_t a = pre_arc[static_cast<std::size_t>(v)];
      r.cap[static_cast<std::size_t>(a)] -= push;
      r.cap[static_cast<std::size_t>(a ^ 1)] += push;
      v = r.head[static_cast<std::size_t>(a ^ 1)];
    }
    res.flow += push;
    // Charged per augmentation (not in one lump at the end) so the PRAM-work
    // deadline can bind between augmentations; the loop-top poll above sees
    // the running total. Summed over the loop plus the final extraction
    // charge below, the totals are exactly the historical m*(flow+1) work
    // and flow+1 depth.
    par::charge(static_cast<std::uint64_t>(g.num_arcs()) * static_cast<std::uint64_t>(push),
                static_cast<std::uint64_t>(push));
  }
  for (std::size_t k = 0; k < static_cast<std::size_t>(g.num_arcs()); ++k) {
    res.arc_flow[k] = r.cap[2 * k + 1];  // reverse capacity == flow sent
    res.cost += res.arc_flow[k] * g.arc(static_cast<graph::EdgeId>(k)).cost;
  }
  par::charge(static_cast<std::uint64_t>(g.num_arcs()), 1);
  return res;
}

McmfResult ssp_min_cost_b_flow(const graph::Digraph& g, const std::vector<std::int64_t>& b) {
  // Super-source / super-sink reduction.
  const Vertex n = g.num_vertices();
  graph::Digraph aug(n + 2);
  for (const auto& a : g.arcs()) aug.add_arc(a.from, a.to, a.cap, a.cost);
  const Vertex ss = n;
  const Vertex tt = n + 1;
  std::int64_t supply = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (b[static_cast<std::size_t>(v)] > 0) {
      aug.add_arc(ss, v, b[static_cast<std::size_t>(v)], 0);
      supply += b[static_cast<std::size_t>(v)];
    } else if (b[static_cast<std::size_t>(v)] < 0) {
      aug.add_arc(v, tt, -b[static_cast<std::size_t>(v)], 0);
    }
  }
  McmfResult res = ssp_min_cost_max_flow(aug, ss, tt);
  res.arc_flow.resize(static_cast<std::size_t>(g.num_arcs()));
  res.cost = 0;
  for (std::size_t k = 0; k < static_cast<std::size_t>(g.num_arcs()); ++k)
    res.cost += res.arc_flow[k] * g.arc(static_cast<graph::EdgeId>(k)).cost;
  (void)supply;
  return res;
}

}  // namespace pmcf::baselines
