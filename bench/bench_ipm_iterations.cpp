// Experiment F-ITERS — the Õ(√n log(CW)) iteration count (Section 2.2 /
// Appendix F). Sweep n at fixed density and report iterations: the ratio
// iters/√n should stay roughly flat while iters/n decays.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "mcf/min_cost_flow.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

void BM_IterationsVsN(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  par::Rng rng(11);
  const auto g = graph::random_flow_network(n, 6 * n, 4, 4, rng);
  std::int32_t iters = 0;
  bench::run_instrumented(state, [&] {
    mcf::SolveOptions opts;
    opts.ipm.mu_end = 1e-3;
    opts.ipm.leverage.sketch_dim = 8;
    const auto res = mcf::min_cost_max_flow(g, 0, n - 1, opts);
    iters = res.stats.ipm_iterations;
    benchmark::DoNotOptimize(res.cost);
  });
  state.counters["iters"] = iters;
  state.counters["iters_per_sqrt_n"] =
      static_cast<double>(iters) / std::sqrt(static_cast<double>(n));
  state.counters["iters_per_n"] = static_cast<double>(iters) / static_cast<double>(n);
}
BENCHMARK(BM_IterationsVsN)->Arg(12)->Arg(24)->Arg(48)->Arg(96)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
