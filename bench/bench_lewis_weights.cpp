// Experiment C.1 — dynamic Lewis weights: amortized query cost Õ(n + m/√n).
// Sweep m at fixed n: total work over T queries divided by T should grow
// sublinearly in m (the periodic-rebuild amortization).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/solver_context.hpp"
#include "ds/lewis_maintenance.hpp"
#include "graph/generators.hpp"
#include "linalg/incidence.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

void BM_LewisMaintenance(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto density = static_cast<std::int64_t>(state.range(1));
  par::Rng rng(31);
  const auto g = graph::random_flow_network(n, density * n, 4, 4, rng);
  const linalg::IncidenceOp a(g);
  linalg::Vec w(a.rows());
  for (auto& x : w) x = 0.5 + rng.next_double();

  const int queries = 20;
  bench::run_instrumented(state, [&] {
    ds::LewisMaintenanceOptions opts;
    opts.leverage.leverage.sketch_dim = 8;
    ds::LewisMaintenance lm(pmcf::core::default_context(), a, w, linalg::constant(a.rows(), static_cast<double>(n) / a.rows()),
                            opts);
    for (int t = 0; t < queries; ++t) {
      // Slow drift on a few entries, then query.
      std::vector<std::size_t> idx{static_cast<std::size_t>(rng.next_below(a.rows()))};
      w[idx[0]] *= 1.01;
      lm.scale(idx, {w[idx[0]]});
      const auto q = lm.query();
      benchmark::DoNotOptimize(q.approx);
    }
  });
  state.counters["queries"] = queries;
  state.counters["m"] = static_cast<double>(a.rows());
}
BENCHMARK(BM_LewisMaintenance)
    ->Args({50, 6})
    ->Args({100, 6})
    ->Args({200, 6})
    ->Args({100, 12})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
