// Experiment E.1 — dual maintenance: per-ADD work Õ(n log W + drift²/ε²),
// not O(m). Small steps touch few coordinates; the dyadic HeavyHitter
// queries account for the n log W term.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/solver_context.hpp"
#include "ds/dual_maintenance.hpp"
#include "graph/generators.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

void BM_DualAdds(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto density = static_cast<std::int64_t>(state.range(1));
  par::Rng rng(41);
  const auto g = graph::random_flow_network(n, density * n, 4, 4, rng);
  const std::size_t m = static_cast<std::size_t>(g.num_arcs());

  const int adds = 20;
  std::size_t total_changed = 0;
  bench::run_instrumented(state, [&] {
    ds::DualMaintenance dm(pmcf::core::default_context(), g, linalg::Vec(m, 0.0), linalg::Vec(m, 1.0), {.eps = 0.2});
    for (int t = 0; t < adds; ++t) {
      linalg::Vec h(static_cast<std::size_t>(n), 0.0);
      for (int k = 0; k < 3; ++k)
        h[rng.next_below(static_cast<std::uint64_t>(n - 1))] += 0.02 * (rng.next_double() - 0.5);
      const auto res = dm.add(h);
      total_changed += res.changed.size();
    }
  });
  state.counters["adds"] = adds;
  state.counters["changed_total"] = static_cast<double>(total_changed);
  state.counters["m"] = static_cast<double>(m);
}
BENCHMARK(BM_DualAdds)
    ->Args({50, 6})
    ->Args({100, 6})
    ->Args({200, 6})
    ->Args({100, 12})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
