#include "bench_common.hpp"

#include <cmath>
#include <vector>

namespace pmcf::bench {

double fit_exponent(const std::vector<double>& xs, const std::vector<double>& ys) {
  // Least-squares slope of log(y) against log(x).
  const std::size_t n = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace pmcf::bench
