// Experiment T1-L — Table 1 (left): parallel min-cost flow.
//
// Paper rows reproduced (shape, not absolute constants):
//   [vdBLL+21]/this paper:  Õ(m + n^1.5) work;  this paper: Õ(√n) depth
//   [LS14]:                 Õ(m √n) work, Õ(√n) depth  (= our reference IPM)
//   combinatorial baseline: successive shortest path
//
// Each benchmark solves exact min-cost max-flow on dense random networks and
// reports the PRAM work/depth counters plus IPM iterations. Compare across
// the n sweep: the reference IPM's work grows ~ m√n while the robust IPM's
// per-iteration work stays ~ m/√n + n (robust_step_work counter).

#include <benchmark/benchmark.h>

#include "baselines/cost_scaling.hpp"
#include "baselines/ssp.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "mcf/min_cost_flow.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

graph::Digraph instance(graph::Vertex n, std::int64_t density, std::uint64_t seed) {
  par::Rng rng(seed);
  return graph::random_flow_network(n, density * n, 6, 6, rng);
}

void BM_ReferenceIpm(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto g = instance(n, 8, 42);
  std::int32_t iters = 0;
  bench::run_instrumented(state, [&] {
    mcf::SolveOptions opts;
    opts.ipm.mu_end = 1e-3;
    opts.ipm.leverage.sketch_dim = 8;
    const auto res = mcf::min_cost_max_flow(g, 0, n - 1, opts);
    iters = res.stats.ipm_iterations;
    benchmark::DoNotOptimize(res.cost);
  });
  state.counters["ipm_iters"] = iters;
  state.counters["m"] = static_cast<double>(g.num_arcs());
}
BENCHMARK(BM_ReferenceIpm)->Arg(16)->Arg(24)->Arg(32)->Arg(48)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RobustIpm(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto g = instance(n, 8, 42);
  std::int32_t iters = 0;
  double step_work = 0.0;
  bench::run_instrumented(state, [&] {
    mcf::SolveOptions opts;
    opts.method = mcf::Method::kRobustIpm;
    opts.ipm.mu_end = 1e-3;
    const auto res = mcf::min_cost_max_flow(g, 0, n - 1, opts);
    iters = res.stats.ipm_iterations;
    step_work = res.stats.robust_steps > 0
                    ? static_cast<double>(res.stats.robust_step_work) /
                          static_cast<double>(res.stats.robust_steps)
                    : 0.0;
    benchmark::DoNotOptimize(res.cost);
  });
  state.counters["ipm_iters"] = iters;
  state.counters["step_work"] = step_work;  // Õ(m/√n + n) per-step quantity
  state.counters["m"] = static_cast<double>(g.num_arcs());
}
BENCHMARK(BM_RobustIpm)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SspBaseline(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto g = instance(n, 8, 42);
  bench::run_instrumented(state, [&] {
    const auto res = baselines::ssp_min_cost_max_flow(g, 0, n - 1);
    benchmark::DoNotOptimize(res.cost);
  });
  state.counters["m"] = static_cast<double>(g.num_arcs());
}
BENCHMARK(BM_SspBaseline)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_CostScalingBaseline(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto g = instance(n, 8, 42);
  std::int64_t phases = 0;
  bench::run_instrumented(state, [&] {
    const auto res = baselines::cost_scaling_max_flow(g, 0, n - 1);
    phases = res.refine_phases;
    benchmark::DoNotOptimize(res.cost);
  });
  state.counters["refine_phases"] = static_cast<double>(phases);
  state.counters["m"] = static_cast<double>(g.num_arcs());
}
BENCHMARK(BM_CostScalingBaseline)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
