#pragma once
// Sustained-load soak harness for pmcf::Engine (EXPERIMENTS.md "Soak
// methodology").
//
// An open-loop load driver: arrivals follow a seeded, precomputed schedule
// (deterministic Poisson or Markov-modulated bursty process), independent of
// how fast the engine drains — the traffic shape a serving deployment faces,
// where clients do not slow down because the server is busy. A fixed pool of
// client threads replays the schedule against Engine::solve with mixed
// instance sizes, tenants, priorities, and deadline distributions, then the
// report combines client-side latency records with the engine's own metrics
// snapshot.
//
// Caveat (bounded open loop): each client thread blocks while its request is
// queued or solving, so at most `workers` requests are in the system at
// once. Choose workers > slots + queue to let the backpressure queue
// actually fill and shed; under extreme overload the replay falls behind the
// schedule and the report's achieved_rps shows by how much.

#include <cstddef>
#include <cstdint>
#include <string>

#include "mcf/metrics.hpp"

namespace pmcf::soak {

enum class ArrivalProcess {
  kPoisson,  ///< exponential inter-arrivals at a constant rate
  kBurst,    ///< two-state Markov-modulated Poisson (calm / burst)
};

struct SoakConfig {
  std::size_t requests = 100000;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  std::uint64_t seed = 0x50a4b011ULL;

  /// Offered load as a multiple of the measured serving capacity. Capacity
  /// is calibrated closed-loop *through* a scratch engine, so it includes
  /// slot-handoff and wakeup overhead, not just raw solve time. 2.0 =
  /// sustained 2x overload: half of everything offered must shed or miss
  /// deadlines.
  double target_util = 2.0;

  // Engine shape. Defaults are the acceptance-gate shape, calibrated for a
  // single-core CI host: one slot so priority inversion is starkest, and a
  // queue deep enough that priority-0 can evict its way in during spikes.
  std::size_t slots = 1;
  std::size_t queue = 12;
  double chaos_cancel_rate = 0.0;  ///< EngineConfig::chaos_cancel_rate

  // Client shape. Must satisfy workers > slots + queue (see caveat above).
  std::size_t workers = 16;
  bool paced = true;  ///< false: ignore the schedule, submit at max rate

  // Request mix (shares need not be normalized; they are).
  double priority_share[kNumPriorities] = {0.25, 0.25, 0.25, 0.25};
  std::size_t tenants = 4;
  double hot_tenant_share = 0.4;  ///< tenant 0's share; the rest split evenly
  double deadline_share = 0.2;  ///< fraction of requests carrying a deadline
  /// Deadline ~ scale * effective service time. Sized so deadlines clear the
  /// queue-wait p99 under 2x overload: admitted work usually finishes in
  /// time, while the predictive shed still fires on hopeless arrivals.
  double deadline_scale = 64.0;
  /// >0: a canceler thread fires Engine::cancel at live handles roughly
  /// `cancel_rate` times per mean service time.
  double cancel_rate = 0.0;

  // Burst process shape (kBurst only). The calm/burst rates are solved so
  // the *time-averaged* rate still matches target_util.
  double burst_factor = 8.0;    ///< burst-state rate vs calm-state rate
  double burst_on_share = 0.2;  ///< fraction of time spent bursting
  double burst_cycle_services = 400.0;  ///< mean calm+burst cycle, in services

  // Instance mix: small min-cost-flow instances (combinatorial SSP method)
  // in a spread of sizes, pre-generated and solved round-robin by schedule.
  // Sized so the solve (tens of µs) dominates per-request serving overhead;
  // much smaller and the benchmark measures the admission mutex instead.
  std::size_t num_instances = 16;
  std::size_t min_nodes = 16;
  std::size_t max_nodes = 28;
};

struct SoakReport {
  std::size_t requests = 0;
  double duration_ms = 0.0;      ///< first submission → last completion
  double mean_service_us = 0.0;  ///< calibrated direct (engine-less) solve time
  double effective_service_us = 0.0;  ///< per-request time through the engine
  double capacity_rps = 0.0;     ///< closed-loop serving capacity
  double offered_rps = 0.0;      ///< scheduled arrival rate
  double achieved_rps = 0.0;     ///< completed (any status) per second
  // End-to-end client-side latency of kOk requests, exact percentiles.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  // Engine-side queue-wait percentiles (admitted requests).
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double shed_rate = 0.0;               ///< kLoadShed / submitted
  double goodput[kNumPriorities] = {};  ///< kOk / submitted, per priority
  std::uint64_t submitted_by_priority[kNumPriorities] = {};
  bool drained = true;  ///< queue and slots empty after the run
  MetricsSnapshot metrics;

  /// The report as a JSON object (one line per field, no trailing newline),
  /// for perf-trajectory embedding and the soak CI job.
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

/// Run one soak: generate instances, calibrate service time, precompute the
/// arrival schedule, replay it with `workers` client threads, aggregate.
/// Deterministic in cfg.seed up to scheduling noise (the schedule, request
/// mix, and instance set are exactly reproducible; latencies are not).
SoakReport run_soak(const SoakConfig& cfg);

}  // namespace pmcf::soak
