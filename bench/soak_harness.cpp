#include "soak_harness.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <thread>
#include <vector>

#include "core/deadline.hpp"
#include "graph/generators.hpp"
#include "mcf/engine.hpp"
#include "mcf/min_cost_flow.hpp"
#include "parallel/rng.hpp"

namespace pmcf::soak {

namespace {

using Clock = std::chrono::steady_clock;

/// One scheduled request, fully decided before the clock starts.
struct Planned {
  double at_us = 0.0;  ///< arrival offset from t0
  std::uint32_t tenant = 0;
  std::uint32_t priority = 0;
  std::uint32_t instance = 0;
  double deadline_us = 0.0;  ///< 0 = open
};

/// One completed request, recorded lock-free by its own worker.
struct Outcome {
  SolveStatus status = SolveStatus::kOk;
  std::uint32_t priority = 0;
  double latency_us = 0.0;
};

double exp_draw(par::Rng& rng, double mean) {
  // Inverse-CDF with u bounded away from 1 so the log stays finite.
  const double u = std::min(rng.next_double(), 0.999999999);
  return -std::log(1.0 - u) * mean;
}

std::size_t pick_share(par::Rng& rng, const double* share, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += std::max(0.0, share[i]);
  if (total <= 0.0) return 0;
  double u = rng.next_double() * total;
  for (std::size_t i = 0; i < n; ++i) {
    u -= std::max(0.0, share[i]);
    if (u < 0.0) return i;
  }
  return n - 1;
}

mcf::SolveOptions soak_opts() {
  mcf::SolveOptions opts;
  // Combinatorial SSP: microsecond-scale on the tiny soak instances, so 1e5+
  // requests fit a CI budget while still exercising the full serving path.
  opts.method = mcf::Method::kCombinatorial;
  return opts;
}

std::vector<Planned> make_schedule(const SoakConfig& cfg, double capacity_rps,
                                   double eff_service_us, double* offered_rps_out) {
  par::Rng rng(cfg.seed);
  const double rate = cfg.target_util * capacity_rps / 1e6;  // arrivals per µs
  *offered_rps_out = rate * 1e6;

  // Burst modulation: rate(t) alternates between calm and burst so that the
  // time average equals `rate`.
  const double on = std::clamp(cfg.burst_on_share, 0.01, 0.99);
  const double factor = std::max(1.0, cfg.burst_factor);
  const double calm_rate = rate / (on * factor + (1.0 - on));
  const double burst_rate = calm_rate * factor;
  const double cycle_us = cfg.burst_cycle_services * eff_service_us;
  bool bursting = false;
  double state_ends_at = exp_draw(rng, (1.0 - on) * cycle_us);

  std::vector<Planned> plan(cfg.requests);
  double t = 0.0;
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    if (cfg.arrivals == ArrivalProcess::kPoisson) {
      t += exp_draw(rng, 1.0 / rate);
    } else {
      double gap = exp_draw(rng, 1.0 / (bursting ? burst_rate : calm_rate));
      while (t + gap > state_ends_at) {
        // Rescale the residual gap across the state flip (thinning-free MMPP).
        const double left = state_ends_at - t;
        gap = (gap - left) * (bursting ? burst_rate : calm_rate);
        t = state_ends_at;
        bursting = !bursting;
        state_ends_at = t + exp_draw(rng, (bursting ? on : 1.0 - on) * cycle_us);
        gap /= bursting ? burst_rate : calm_rate;
      }
      t += gap;
    }
    Planned& p = plan[i];
    p.at_us = t;
    p.priority = static_cast<std::uint32_t>(
        pick_share(rng, cfg.priority_share, kNumPriorities));
    // Hot tenant 0 takes hot_tenant_share; the rest split the remainder.
    const std::size_t tenants = std::max<std::size_t>(1, cfg.tenants);
    if (tenants == 1 || rng.next_double() < cfg.hot_tenant_share) {
      p.tenant = 0;
    } else {
      p.tenant = 1 + static_cast<std::uint32_t>(rng.next_below(tenants - 1));
    }
    p.instance = static_cast<std::uint32_t>(rng.next_below(cfg.num_instances));
    if (rng.next_double() < cfg.deadline_share)
      p.deadline_us = cfg.deadline_scale * eff_service_us * (0.5 + rng.next_double());
  }
  return plan;
}

}  // namespace

SoakReport run_soak(const SoakConfig& cfg) {
  // --- Instance set: tiny MCF instances across a spread of sizes. ----------
  const std::size_t num_instances = std::max<std::size_t>(1, cfg.num_instances);
  std::deque<graph::Digraph> graphs;
  std::vector<Instance> instances;
  instances.reserve(num_instances);
  for (std::size_t i = 0; i < num_instances; ++i) {
    par::Rng grng(cfg.seed ^ (0x9e37 + 131 * i));
    const auto span = cfg.max_nodes > cfg.min_nodes ? cfg.max_nodes - cfg.min_nodes + 1 : 1;
    const auto n = static_cast<graph::Vertex>(cfg.min_nodes + i % span);
    graphs.push_back(graph::random_flow_network(n, 4 * n, 6, 6, grng));
    instances.push_back(Instance::max_flow(graphs.back(), 0, graphs.back().num_vertices() - 1));
  }
  const mcf::SolveOptions opts = soak_opts();

  // --- Calibrate the mean service time (direct solves, engine untouched). --
  double calib_us = 0.0;
  std::size_t calib_n = 0;
  for (int rep = 0; rep < 3; ++rep) {
    for (std::size_t i = 0; i < num_instances; ++i) {
      const auto t0 = Clock::now();
      const auto res = mcf::min_cost_max_flow(*instances[i].graph, instances[i].source,
                                              instances[i].sink, opts);
      const auto t1 = Clock::now();
      if (rep > 0) {  // first pass is warm-up
        calib_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
        ++calib_n;
      }
      if (res.status != SolveStatus::kOk) std::abort();
    }
  }
  const double mean_service_us = std::max(1.0, calib_us / static_cast<double>(calib_n));

  // --- Calibrate serving capacity through a scratch engine (closed loop). --
  // Direct solves understate the cost of serving: on microsecond instances
  // the slot handoff + waiter wakeup rivals the solve itself, and on an
  // oversubscribed host thread contention inflates it further. The schedule
  // must be derated against *serving* capacity or target_util quietly
  // overstates the overload factor.
  double capacity_rps = 0.0;
  {
    EngineConfig ccfg;
    ccfg.seed = cfg.seed ^ 0xca11bULL;
    ccfg.instrument = false;
    ccfg.use_global_pool = false;
    ccfg.max_in_flight = std::max<std::size_t>(1, cfg.slots);
    // Workers never exceed slots + queue here, so nothing sheds.
    ccfg.max_queue = 8;
    const Engine cal(ccfg);
    const std::size_t cal_workers = std::min<std::size_t>(ccfg.max_in_flight + 2, cfg.workers);
    const std::size_t cal_requests = std::max<std::size_t>(256, 64 * cal_workers);
    // Several short batches, keep the best: a deschedule by a noisy
    // neighbour can only make a batch look slower than the hardware is, so
    // the max-throughput batch is the honest capacity estimate.
    for (int batch = 0; batch < 4; ++batch) {
      std::vector<std::thread> cal_threads;
      cal_threads.reserve(cal_workers);
      const auto c0 = Clock::now();
      for (std::size_t w = 0; w < cal_workers; ++w) {
        cal_threads.emplace_back([&, w] {
          SolveControl control;
          for (std::size_t i = w; i < cal_requests; i += cal_workers) {
            const auto res = cal.solve(instances[i % num_instances], opts, control);
            if (res.result.status != SolveStatus::kOk) std::abort();
          }
        });
      }
      for (auto& th : cal_threads) th.join();
      const auto c1 = Clock::now();
      const double cal_s = std::chrono::duration<double>(c1 - c0).count();
      capacity_rps =
          std::max(capacity_rps, static_cast<double>(cal_requests) / std::max(1e-9, cal_s));
    }
  }
  const double eff_service_us =
      1e6 * static_cast<double>(std::max<std::size_t>(1, cfg.slots)) / capacity_rps;

  // --- Schedule + engine. ---------------------------------------------------
  SoakReport report;
  report.requests = cfg.requests;
  report.mean_service_us = mean_service_us;
  report.effective_service_us = eff_service_us;
  report.capacity_rps = capacity_rps;
  std::vector<Planned> plan =
      make_schedule(cfg, capacity_rps, eff_service_us, &report.offered_rps);

  EngineConfig ecfg;
  ecfg.seed = cfg.seed;
  ecfg.instrument = false;       // wall-clock serving, no PRAM tracker
  ecfg.use_global_pool = false;  // each solve stays on its client thread
  ecfg.max_in_flight = cfg.slots;
  ecfg.max_queue = cfg.queue;
  ecfg.chaos_cancel_rate = cfg.chaos_cancel_rate;
  ecfg.chaos_seed = cfg.seed ^ 0xc4a05ULL;
  const Engine engine(ecfg);

  // --- Replay. --------------------------------------------------------------
  const std::size_t workers = std::max<std::size_t>(1, cfg.workers);
  std::vector<Outcome> outcomes(cfg.requests);
  std::vector<std::atomic<SolveHandle>> live_handles(workers);
  for (auto& h : live_handles) h.store(0);
  std::atomic<bool> done{false};

  const auto t0 = Clock::now();
  std::atomic<std::int64_t> last_done_us{0};

  std::vector<std::thread> threads;
  threads.reserve(workers + 1);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = w; i < plan.size(); i += workers) {
        const Planned& p = plan[i];
        if (cfg.paced) {
          const auto due = t0 + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double, std::micro>(p.at_us));
          if (due > Clock::now()) std::this_thread::sleep_until(due);
        }
        SolveControl control;
        control.tenant = p.tenant;
        control.priority = p.priority;
        if (p.deadline_us > 0.0)
          control.deadline = core::Deadline::in(std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::micro>(p.deadline_us)));
        if (cfg.cancel_rate > 0.0) control.handle = &live_handles[w];
        const auto s0 = Clock::now();
        const auto res = engine.solve(instances[p.instance], opts, control);
        const auto s1 = Clock::now();
        if (cfg.cancel_rate > 0.0) live_handles[w].store(0, std::memory_order_relaxed);
        outcomes[i].status = res.result.status;
        outcomes[i].priority = p.priority;
        outcomes[i].latency_us = std::chrono::duration<double, std::micro>(s1 - s0).count();
        const auto done_us =
            std::chrono::duration_cast<std::chrono::microseconds>(s1 - t0).count();
        std::int64_t prev = last_done_us.load(std::memory_order_relaxed);
        while (prev < done_us &&
               !last_done_us.compare_exchange_weak(prev, done_us, std::memory_order_relaxed)) {
        }
      }
    });
  }
  if (cfg.cancel_rate > 0.0) {
    threads.emplace_back([&] {
      // Roughly cancel_rate cancel attempts per mean service time, walking
      // the workers round-robin. Most attempts miss (handle already retired)
      // — that is the point: cancel() must be a clean no-op then.
      const auto gap = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::micro>(mean_service_us / cfg.cancel_rate));
      std::size_t rr = 0;
      while (!done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(gap);
        const SolveHandle h = live_handles[rr++ % workers].load(std::memory_order_relaxed);
        if (h != 0) (void)engine.cancel(h);
      }
    });
  }
  for (std::size_t w = 0; w < workers; ++w) threads[w].join();
  done.store(true);
  for (std::size_t w = workers; w < threads.size(); ++w) threads[w].join();

  // --- Aggregate. -----------------------------------------------------------
  report.duration_ms = static_cast<double>(last_done_us.load()) / 1e3;
  report.achieved_rps = report.duration_ms > 0.0
                            ? static_cast<double>(cfg.requests) / (report.duration_ms / 1e3)
                            : 0.0;

  std::vector<double> ok_latencies;
  ok_latencies.reserve(cfg.requests);
  std::uint64_t ok_by_prio[kNumPriorities] = {};
  std::uint64_t sub_by_prio[kNumPriorities] = {};
  for (const Outcome& o : outcomes) {
    ++sub_by_prio[o.priority];
    if (o.status == SolveStatus::kOk) {
      ++ok_by_prio[o.priority];
      ok_latencies.push_back(o.latency_us);
    }
  }
  std::sort(ok_latencies.begin(), ok_latencies.end());
  const auto pct = [&](double q) {
    if (ok_latencies.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(ok_latencies.size() - 1));
    return ok_latencies[idx] / 1e3;
  };
  report.p50_ms = pct(0.50);
  report.p99_ms = pct(0.99);
  report.p999_ms = pct(0.999);
  for (std::size_t p = 0; p < kNumPriorities; ++p) {
    report.submitted_by_priority[p] = sub_by_prio[p];
    report.goodput[p] = sub_by_prio[p] == 0 ? 1.0
                                            : static_cast<double>(ok_by_prio[p]) /
                                                  static_cast<double>(sub_by_prio[p]);
  }

  report.metrics = engine.metrics_snapshot();
  report.shed_rate = report.metrics.shed_rate();
  report.queue_wait_p50_ms = report.metrics.queue_wait.quantile_us(0.50) / 1e3;
  report.queue_wait_p99_ms = report.metrics.queue_wait.quantile_us(0.99) / 1e3;
  report.drained = engine.in_flight() == 0 && engine.queue_depth() == 0;
  return report;
}

std::string SoakReport::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  char buf[512];
  std::string out = "{\n";
  const auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += pad;
    out += "  ";
    out += buf;
  };
  add("\"requests\": %zu,\n", requests);
  add("\"duration_ms\": %.2f,\n", duration_ms);
  add("\"mean_service_us\": %.2f,\n", mean_service_us);
  add("\"effective_service_us\": %.2f,\n", effective_service_us);
  add("\"capacity_rps\": %.1f,\n", capacity_rps);
  add("\"offered_rps\": %.1f,\n", offered_rps);
  add("\"achieved_rps\": %.1f,\n", achieved_rps);
  add("\"latency_ms\": {\"p50\": %.4f, \"p99\": %.4f, \"p999\": %.4f},\n", p50_ms, p99_ms,
      p999_ms);
  add("\"queue_wait_ms\": {\"p50\": %.4f, \"p99\": %.4f},\n", queue_wait_p50_ms,
      queue_wait_p99_ms);
  add("\"shed_rate\": %.4f,\n", shed_rate);
  add("\"goodput\": [%.4f, %.4f, %.4f, %.4f],\n", goodput[0], goodput[1], goodput[2],
      goodput[3]);
  add("\"submitted_by_priority\": [%llu, %llu, %llu, %llu],\n",
      static_cast<unsigned long long>(submitted_by_priority[0]),
      static_cast<unsigned long long>(submitted_by_priority[1]),
      static_cast<unsigned long long>(submitted_by_priority[2]),
      static_cast<unsigned long long>(submitted_by_priority[3]));
  add("\"drained\": %s,\n", drained ? "true" : "false");
  add("\"counters\": {\n");
  for (std::size_t i = 0; i < static_cast<std::size_t>(EngineCounter::kNumEngineCounters);
       ++i) {
    add("  \"%s\": %llu%s\n", to_string(static_cast<EngineCounter>(i)),
        static_cast<unsigned long long>(metrics.counters[i]),
        i + 1 < static_cast<std::size_t>(EngineCounter::kNumEngineCounters) ? "," : "");
  }
  add("}\n");
  out += pad;
  out += "}";
  return out;
}

}  // namespace pmcf::soak
