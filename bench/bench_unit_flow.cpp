// Experiment L3.11 — ParallelUnitFlow: work scales with ||Δ||_0 (the source
// support) and the height/capacity parameters, not with m.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "expander/unit_flow.hpp"
#include "graph/generators.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

void BM_UnitFlow(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto sources = static_cast<std::size_t>(state.range(1));
  par::Rng rng(17);
  auto g = graph::random_regular_expander(n, 4, rng);
  expander::UnitFlowProblem p;
  p.g = &g;
  p.cap.assign(g.edge_slots(), 8);
  p.source.assign(static_cast<std::size_t>(n), 0);
  p.sink.assign(static_cast<std::size_t>(n), 0);
  // Concentrated sources (several times the local sink capacity) force the
  // push-relabel dynamics to spread flow; sinks absorb half a degree each.
  for (std::size_t k = 0; k < sources; ++k)
    p.source[rng.next_below(static_cast<std::uint64_t>(n))] += 6 * 8;
  for (graph::Vertex v = 0; v < n; ++v)
    p.sink[static_cast<std::size_t>(v)] = g.degree(v) / 2;
  p.height = 24;

  std::uint64_t scans = 0;
  std::int64_t excess = 0;
  bench::run_instrumented(state, [&] {
    const auto r = expander::parallel_unit_flow(p);
    scans = r.edge_scans;
    excess = r.total_excess;
    benchmark::DoNotOptimize(r.flow.data());
  });
  state.counters["edge_scans"] = static_cast<double>(scans);
  state.counters["leftover_excess"] = static_cast<double>(excess);
  state.counters["m"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_UnitFlow)
    ->Args({500, 2})
    ->Args({2000, 2})
    ->Args({8000, 2})
    ->Args({2000, 8})
    ->Args({2000, 32})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
