#pragma once
// Shared helpers for the benchmark binaries: every bench reports the PRAM
// work/depth counters as benchmark counters so the sweep output reproduces
// the *shape* of the paper's complexity table rows (see EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include "parallel/work_depth.hpp"

namespace pmcf::bench {

/// Runs `body` once under a fresh tracker and attaches work/depth counters to
/// `state`. The wall-time of the body still drives the benchmark timing.
template <class Body>
void run_instrumented(benchmark::State& state, Body&& body) {
  par::Cost last{};
  for (auto _ : state) {
    par::Tracker::instance().reset();
    body();
    last = par::snapshot();
  }
  state.counters["work"] = static_cast<double>(last.work);
  state.counters["depth"] = static_cast<double>(last.depth);
}

/// log-log slope helper for EXPERIMENTS.md style reporting.
double fit_exponent(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace pmcf::bench
