// Open-loop sustained-load soak driver for pmcf::Engine (EXPERIMENTS.md
// "Soak methodology"). Replays a seeded Poisson or bursty arrival schedule
// against a bounded engine and prints the SoakReport as JSON; optional
// --assert-* flags turn it into a pass/fail gate for the scheduled soak CI
// job (exit 1 on violation).
//
// Usage:
//   bench_engine_soak [--requests=N] [--arrivals=poisson|burst] [--seed=S]
//                     [--util=X] [--slots=N] [--queue=N] [--workers=N]
//                     [--chaos=RATE] [--cancel=RATE] [--unpaced]
//                     [--out=FILE] [--assert-p0-goodput=X] [--assert-drained]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "soak_harness.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& detail) {
  std::cerr << "bench_engine_soak: " << detail << "\n"
            << "usage: bench_engine_soak [--requests=N] [--arrivals=poisson|burst]\n"
            << "  [--seed=S] [--util=X] [--slots=N] [--queue=N] [--workers=N]\n"
            << "  [--chaos=RATE] [--cancel=RATE] [--deadline-share=X]\n"
            << "  [--deadline-scale=X] [--min-nodes=N] [--max-nodes=N]\n"
            << "  [--unpaced] [--out=FILE] [--assert-p0-goodput=X] [--assert-drained]\n";
  std::exit(2);
}

double parse_double(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size() || v < 0.0) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage_error(flag + " expects a non-negative number, got '" + text + "'");
  }
}

std::size_t parse_size(const std::string& flag, const std::string& text) {
  const double v = parse_double(flag, text);
  if (v != static_cast<double>(static_cast<std::size_t>(v)))
    usage_error(flag + " expects an integer, got '" + text + "'");
  return static_cast<std::size_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  pmcf::soak::SoakConfig cfg;
  std::string out_path;
  double assert_p0_goodput = -1.0;
  bool assert_drained = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::size_t prefix) { return arg.substr(prefix); };
    if (arg.rfind("--requests=", 0) == 0) {
      cfg.requests = parse_size("--requests", value(11));
    } else if (arg == "--arrivals=poisson") {
      cfg.arrivals = pmcf::soak::ArrivalProcess::kPoisson;
    } else if (arg == "--arrivals=burst") {
      cfg.arrivals = pmcf::soak::ArrivalProcess::kBurst;
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = parse_size("--seed", value(7));
    } else if (arg.rfind("--util=", 0) == 0) {
      cfg.target_util = parse_double("--util", value(7));
    } else if (arg.rfind("--slots=", 0) == 0) {
      cfg.slots = parse_size("--slots", value(8));
    } else if (arg.rfind("--queue=", 0) == 0) {
      cfg.queue = parse_size("--queue", value(8));
    } else if (arg.rfind("--workers=", 0) == 0) {
      cfg.workers = parse_size("--workers", value(10));
    } else if (arg.rfind("--chaos=", 0) == 0) {
      cfg.chaos_cancel_rate = parse_double("--chaos", value(8));
    } else if (arg.rfind("--cancel=", 0) == 0) {
      cfg.cancel_rate = parse_double("--cancel", value(9));
    } else if (arg.rfind("--deadline-share=", 0) == 0) {
      cfg.deadline_share = parse_double("--deadline-share", value(17));
    } else if (arg.rfind("--deadline-scale=", 0) == 0) {
      cfg.deadline_scale = parse_double("--deadline-scale", value(17));
    } else if (arg.rfind("--min-nodes=", 0) == 0) {
      cfg.min_nodes = parse_size("--min-nodes", value(12));
    } else if (arg.rfind("--max-nodes=", 0) == 0) {
      cfg.max_nodes = parse_size("--max-nodes", value(12));
    } else if (arg == "--unpaced") {
      cfg.paced = false;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value(6);
    } else if (arg.rfind("--assert-p0-goodput=", 0) == 0) {
      assert_p0_goodput = parse_double("--assert-p0-goodput", value(20));
    } else if (arg == "--assert-drained") {
      assert_drained = true;
    } else {
      usage_error("unknown argument: " + arg);
    }
  }

  const pmcf::soak::SoakReport report = pmcf::soak::run_soak(cfg);
  const std::string json = report.to_json();
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << json << "\n";
  }
  std::cout << json << "\n";

  int rc = 0;
  if (assert_p0_goodput >= 0.0 && report.goodput[0] < assert_p0_goodput) {
    std::cerr << "FAIL: priority-0 goodput " << report.goodput[0] << " < "
              << assert_p0_goodput << "\n";
    rc = 1;
  }
  if (assert_drained && !report.drained) {
    std::cerr << "FAIL: engine not drained (in_flight/queue nonzero after run)\n";
    rc = 1;
  }
  if (report.metrics.terminal_total() != report.metrics.of(pmcf::EngineCounter::kSubmitted)) {
    std::cerr << "FAIL: terminal outcomes (" << report.metrics.terminal_total()
              << ") != submitted (" << report.metrics.of(pmcf::EngineCounter::kSubmitted)
              << ")\n";
    rc = 1;
  }
  return rc;
}
