// Experiment D.1 — primal/gradient maintenance: total work over T query
// rounds is Õ(Tn + Σ||h||_0 + T·Σ||v/w||²) — per-query cost driven by the
// bucket count and the number of triggered coordinates, not by m.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "ds/gradient_maintenance.hpp"
#include "graph/generators.hpp"
#include "linalg/incidence.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

void BM_PrimalGradientRounds(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto density = static_cast<std::int64_t>(state.range(1));
  par::Rng rng(37);
  const auto g = graph::random_flow_network(n, density * n, 4, 4, rng);
  const linalg::IncidenceOp a(g);
  const std::size_t m = a.rows();
  linalg::Vec weights(m), tau(m), z(m);
  for (std::size_t i = 0; i < m; ++i) {
    weights[i] = 0.5 + rng.next_double();
    tau[i] = 0.1 + rng.next_double();
    z[i] = 2.0 * rng.next_double() - 1.0;
  }

  const int rounds = 30;
  std::size_t total_changed = 0;
  bench::run_instrumented(state, [&] {
    ds::PrimalGradientMaintenance pg(a, linalg::Vec(m, 1.0), weights, tau, z,
                                     linalg::Vec(m, 0.05));
    for (int t = 0; t < rounds; ++t) {
      (void)pg.query_product();
      const auto q = pg.query_sum({}, {});
      total_changed += q.changed.size();
    }
  });
  state.counters["rounds"] = rounds;
  state.counters["changed_total"] = static_cast<double>(total_changed);
  state.counters["m"] = static_cast<double>(m);
}
BENCHMARK(BM_PrimalGradientRounds)
    ->Args({50, 6})
    ->Args({100, 6})
    ->Args({200, 6})
    ->Args({100, 12})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
