// Experiment E.2 — HeavySampler: sample size and work Õ(m/√n + n log W)
// per draw; sweep m at fixed n and confirm the sample size grows like m/√n,
// far below m.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/solver_context.hpp"
#include "ds/heavy_sampler.hpp"
#include "graph/generators.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

void BM_Sample(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto density = static_cast<std::int64_t>(state.range(1));
  par::Rng rng(43);
  const auto g = graph::random_flow_network(n, density * n, 4, 4, rng);
  const std::size_t m = static_cast<std::size_t>(g.num_arcs());
  linalg::Vec w(m, 1.0);
  linalg::Vec tau(m, static_cast<double>(n) / static_cast<double>(m));
  ds::HeavySampler hs(pmcf::core::default_context(), g, w, tau);
  linalg::Vec h(static_cast<std::size_t>(n));
  for (auto& x : h) x = rng.next_double() - 0.5;
  h[static_cast<std::size_t>(n - 1)] = 0.0;

  std::size_t total = 0;
  const int draws = 5;
  bench::run_instrumented(state, [&] {
    total = 0;
    for (int t = 0; t < draws; ++t) total += hs.sample(h).size();
  });
  state.counters["avg_sample_size"] = static_cast<double>(total) / draws;
  state.counters["m"] = static_cast<double>(m);
}
BENCHMARK(BM_Sample)
    ->Args({64, 8})
    ->Args({64, 16})
    ->Args({64, 32})
    ->Args({256, 8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
