// Experiment L3.1 — dynamic expander decomposition (Lemma 3.1): amortized
// work per updated edge and per-batch depth under insert/delete churn.
// Claim: Õ(|E'|/φ^5) amortized work, Õ(1/φ^4) depth per batch.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/solver_context.hpp"
#include "expander/dynamic_decomp.hpp"
#include "graph/generators.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;
using expander::DynamicExpanderDecomposition;

void BM_ChurnUpdates(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  par::Rng rng(13);
  auto g = graph::random_regular_expander(n, 4, rng);

  std::uint64_t updates = 0;
  bench::run_instrumented(state, [&] {
    DynamicExpanderDecomposition dec(pmcf::core::default_context(), n, {.phi = 0.1});
    std::vector<DynamicExpanderDecomposition::EdgeSpec> edges;
    for (const auto e : g.live_edges()) {
      const auto ep = g.endpoints(e);
      edges.push_back({ep.u, ep.v, e});
    }
    dec.insert(edges);
    // Deletion churn in batches.
    std::int64_t next = 0;
    for (int round = 0; round < 10; ++round) {
      std::vector<std::int64_t> del;
      for (std::size_t k = 0; k < batch; ++k) del.push_back(next++);
      dec.erase(del);
      updates += del.size();
    }
    benchmark::DoNotOptimize(dec.num_edges());
  });
  state.counters["updates"] = static_cast<double>(updates);
  state.counters["m"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_ChurnUpdates)
    ->Args({100, 4})
    ->Args({200, 4})
    ->Args({400, 4})
    ->Args({200, 16})
    ->Args({200, 64})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
