// Experiment B.1 — HeavyHitter query work: Õ(||GAh||² ε^{-2} + n log W)
// instead of O(m). The scan counter should track the number of heavy rows
// plus Õ(n), staying flat as m grows with fixed signal.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/solver_context.hpp"
#include "ds/heavy_hitter.hpp"
#include "graph/generators.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

void BM_HeavyQuery(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto density = static_cast<std::int64_t>(state.range(1));
  par::Rng rng(23);
  const auto g = graph::random_flow_network(n, density * n, 4, 4, rng);
  linalg::Vec w(static_cast<std::size_t>(g.num_arcs()));
  for (auto& x : w) x = 0.5 + rng.next_double();
  ds::HeavyHitter hh(pmcf::core::default_context(), g, w);
  // Localized potential: a few heavy rows regardless of m.
  linalg::Vec h(static_cast<std::size_t>(n), 0.0);
  h[1] = 3.0;
  h[2] = -3.0;

  std::size_t found = 0;
  std::uint64_t scans = 0;
  bench::run_instrumented(state, [&] {
    const auto res = hh.heavy_query(h, 2.0);
    found = res.size();
    scans = hh.last_query_scans();
    benchmark::DoNotOptimize(res.data());
  });
  state.counters["heavy_found"] = static_cast<double>(found);
  state.counters["scans"] = static_cast<double>(scans);
  state.counters["m"] = static_cast<double>(g.num_arcs());
}
BENCHMARK(BM_HeavyQuery)
    ->Args({100, 6})
    ->Args({200, 6})
    ->Args({400, 6})
    ->Args({200, 12})
    ->Args({200, 24})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Scale(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  par::Rng rng(29);
  const auto g = graph::random_flow_network(n, 8 * n, 4, 4, rng);
  linalg::Vec w(static_cast<std::size_t>(g.num_arcs()), 1.0);
  ds::HeavyHitter hh(pmcf::core::default_context(), g, w);
  bench::run_instrumented(state, [&] {
    // Move 16 rows between weight buckets.
    std::vector<std::size_t> idx;
    linalg::Vec vals;
    for (std::size_t k = 0; k < 16; ++k) {
      idx.push_back(rng.next_below(static_cast<std::uint64_t>(g.num_arcs())));
      vals.push_back(0.1 + 4.0 * rng.next_double());
    }
    hh.scale(idx, vals);
  });
  state.counters["m"] = static_cast<double>(g.num_arcs());
}
BENCHMARK(BM_Scale)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
