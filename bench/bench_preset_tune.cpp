// Bench-driven preset auto-tuner (DESIGN.md §14): sweep every preset in
// core::preset_registry() over a set of perf-trajectory-style workloads,
// require kOk + independent certification from every cell of the matrix, and
// emit the per-workload winner (fastest wall time among correct presets) as a
// pinnable JSON file. A deployment reads the "pinned" map and sets
// EngineConfig::preset (or SolveOptions::preset) to the winner for the
// workload shape it serves.
//
// Usage:
//   bench_preset_tune [--out=FILE] [--scale=tiny|full] [--reps=N]
//                     [--assert-ok] [--list]
//
// `--scale=tiny` shrinks the instances so the sweep doubles as the CI
// preset-matrix smoke step: with --assert-ok the binary exits 1 when any
// (workload, preset) cell fails to solve and certify. Wall times are the
// minimum over `reps` runs after one warmup — minimum, not mean, because
// scheduler noise is strictly additive.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ingredients.hpp"
#include "graph/generators.hpp"
#include "mcf/engine.hpp"
#include "mcf/min_cost_flow.hpp"
#include "parallel/rng.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_depth.hpp"

namespace {

using namespace pmcf;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string out = "PRESETS_tuned.json";
  bool tiny = false;
  int reps = 3;
  bool assert_ok = false;
  bool list = false;
};

/// One tuning workload: a solve body that runs the whole instance under a
/// named preset and reports whether it solved + certified.
struct TuneWorkload {
  std::string name;
  std::string detail;
  std::function<bool(const std::string& preset)> body;
};

struct Cell {
  std::string preset;
  double wall_ms = 0.0;
  bool ok = false;
};

struct WorkloadRow {
  std::string name;
  std::string detail;
  std::vector<Cell> cells;
  std::string winner;  ///< fastest correct preset ("" when none survived)
};

// ---------------------------------------------------------------------------
// Workloads. Shapes mirror the perf-trajectory rows (Table-1 max-flow, the
// iteration-dominated solve, a transportation b-flow, a served batch) so the
// tuned winners speak to the same instances EXPERIMENTS.md tracks.

TuneWorkload make_table1(bool tiny) {
  const auto n = static_cast<graph::Vertex>(tiny ? 12 : 28);
  par::Rng rng(42);
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, 8 * n, 6, 6, rng));
  return {"table1_mincostflow", "Table-1 max-flow instance, reference tier",
          [g, n](const std::string& preset) {
            mcf::SolveOptions opts;
            opts.preset = preset;
            opts.ipm.mu_end = 1e-3;
            opts.certify = true;
            const auto res = mcf::min_cost_max_flow(*g, 0, n - 1, opts);
            return res.status == SolveStatus::kOk && res.stats.certified &&
                   res.stats.preset == preset;
          }};
}

TuneWorkload make_ipm_heavy(bool tiny) {
  const auto n = static_cast<graph::Vertex>(tiny ? 14 : 40);
  par::Rng rng(53);
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, 8 * n, 6, 6, rng));
  return {"ipm_iterations", "iteration-dominated solve (per-step costs dominate)",
          [g, n](const std::string& preset) {
            mcf::SolveOptions opts;
            opts.preset = preset;
            opts.ipm.mu_end = 1e-3;
            opts.certify = true;
            const auto res = mcf::min_cost_max_flow(*g, 0, n - 1, opts);
            return res.status == SolveStatus::kOk && res.stats.certified;
          }};
}

TuneWorkload make_transport(bool tiny) {
  const auto side = static_cast<graph::Vertex>(tiny ? 4 : 8);
  par::Rng rng(77);
  auto g = std::make_shared<graph::Digraph>(
      graph::transportation_instance(side, side, 5, 9, rng));
  const graph::Vertex sink = 2 * side + 1;
  return {"transportation", "complete bipartite transportation instance",
          [g, sink](const std::string& preset) {
            mcf::SolveOptions opts;
            opts.preset = preset;
            opts.ipm.mu_end = 1e-3;
            opts.certify = true;
            const auto res = mcf::min_cost_max_flow(*g, 0, sink, opts);
            return res.status == SolveStatus::kOk && res.stats.certified;
          }};
}

TuneWorkload make_served_batch(bool tiny) {
  const std::size_t batch_size = tiny ? 6 : 16;
  const auto n = static_cast<graph::Vertex>(tiny ? 10 : 14);
  auto graphs = std::make_shared<std::vector<graph::Digraph>>();
  graphs->reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    par::Rng rng(8800 + 31 * i);
    graphs->push_back(graph::random_flow_network(n, 4 * n, 6, 6, rng));
  }
  auto batch = std::make_shared<std::vector<Instance>>();
  for (const auto& g : *graphs)
    batch->push_back(Instance::max_flow(g, 0, g.num_vertices() - 1));
  return {"engine_batch", "batch of independent solves served via Engine",
          [graphs, batch](const std::string& preset) {
            EngineConfig cfg;
            cfg.seed = 4242;
            cfg.preset = preset;  // the deployment-pinning path under test
            const Engine engine(cfg);
            mcf::SolveOptions opts;
            opts.ipm.mu_end = 1e-3;
            opts.certify = true;
            const auto results = engine.solve_batch(*batch, opts);
            for (const auto& r : results) {
              if (r.result.status != SolveStatus::kOk || !r.result.stats.certified ||
                  r.result.stats.preset != preset)
                return false;
            }
            return true;
          }};
}

// ---------------------------------------------------------------------------

double time_once_ms(const std::function<bool(const std::string&)>& body,
                    const std::string& preset, bool* ok) {
  const auto t0 = Clock::now();
  const bool good = body(preset);
  const auto t1 = Clock::now();
  if (!good) *ok = false;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

WorkloadRow sweep(const TuneWorkload& w, const std::vector<std::string>& presets,
                  const Options& opt) {
  WorkloadRow row;
  row.name = w.name;
  row.detail = w.detail;
  double best = 1e300;
  for (const std::string& preset : presets) {
    Cell cell;
    cell.preset = preset;
    cell.ok = true;
    (void)time_once_ms(w.body, preset, &cell.ok);  // warmup
    cell.wall_ms = 1e300;
    for (int r = 0; r < opt.reps && cell.ok; ++r)
      cell.wall_ms = std::min(cell.wall_ms, time_once_ms(w.body, preset, &cell.ok));
    if (!cell.ok) cell.wall_ms = 0.0;
    if (cell.ok && cell.wall_ms < best) {
      best = cell.wall_ms;
      row.winner = preset;
    }
    row.cells.push_back(std::move(cell));
  }
  return row;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_json(const std::string& path, const Options& opt,
                const std::vector<std::string>& presets,
                const std::vector<WorkloadRow>& rows) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"pmcf-preset-tune-v1\",\n";
  os << "  \"scale\": \"" << (opt.tiny ? "tiny" : "full") << "\",\n";
  os << "  \"reps\": " << opt.reps << ",\n";
  os << "  \"presets\": [";
  for (std::size_t i = 0; i < presets.size(); ++i)
    os << (i ? ", " : "") << "\"" << json_escape(presets[i]) << "\"";
  os << "],\n";
  os << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    os << "      \"detail\": \"" << json_escape(r.detail) << "\",\n";
    os << "      \"winner\": \"" << json_escape(r.winner) << "\",\n";
    os << "      \"cells\": [\n";
    for (std::size_t j = 0; j < r.cells.size(); ++j) {
      const auto& c = r.cells[j];
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "        {\"preset\": \"%s\", \"wall_ms\": %.4f, \"ok\": %s}%s\n",
                    json_escape(c.preset).c_str(), c.wall_ms, c.ok ? "true" : "false",
                    j + 1 < r.cells.size() ? "," : "");
      os << buf;
    }
    os << "      ]\n";
    os << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  // The pinnable artifact: workload shape -> winning preset name. Consumers
  // copy the value into EngineConfig::preset / SolveOptions::preset.
  os << "  \"pinned\": {";
  bool first = true;
  for (const auto& r : rows) {
    if (r.winner.empty()) continue;
    os << (first ? "" : ", ") << "\"" << json_escape(r.name) << "\": \""
       << json_escape(r.winner) << "\"";
    first = false;
  }
  os << "}\n";
  os << "}\n";
  std::ofstream f(path);
  f << os.str();
}

[[noreturn]] void usage_error(const std::string& detail) {
  std::cerr << "bench_preset_tune: " << detail << "\n"
            << "usage: bench_preset_tune [--out=FILE] [--scale=tiny|full] "
               "[--reps=N] [--assert-ok] [--list]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      opt.out = arg.substr(6);
    } else if (arg == "--scale=tiny") {
      opt.tiny = true;
    } else if (arg == "--scale=full") {
      opt.tiny = false;
    } else if (arg.rfind("--reps=", 0) == 0) {
      try {
        std::size_t pos = 0;
        opt.reps = std::stoi(arg.substr(7), &pos);
        if (pos != arg.size() - 7 || opt.reps < 1) throw std::invalid_argument(arg);
      } catch (const std::exception&) {
        usage_error("--reps expects a positive integer");
      }
    } else if (arg == "--assert-ok") {
      opt.assert_ok = true;
    } else if (arg == "--list") {
      opt.list = true;
    } else {
      usage_error("unknown argument: " + arg);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const std::vector<std::string> presets = core::preset_registry().names();

  std::vector<TuneWorkload> workloads;
  workloads.push_back(make_table1(opt.tiny));
  workloads.push_back(make_ipm_heavy(opt.tiny));
  workloads.push_back(make_transport(opt.tiny));
  workloads.push_back(make_served_batch(opt.tiny));

  if (opt.list) {
    for (const auto& w : workloads) std::cout << w.name << "\n";
    std::cout << "workloads: " << workloads.size() << "\n";
    std::cout << "presets: " << presets.size() << "\n";
    return 0;
  }

  // Wall-clock tuning: tracker off, one pool configuration (the preset is
  // the variable under test, not the thread count).
  par::Tracker::instance().set_enabled(false);
  par::ThreadPool::configure(std::max(1u, std::thread::hardware_concurrency()));

  bool all_ok = true;
  std::vector<WorkloadRow> rows;
  for (const auto& w : workloads) {
    std::cerr << "[bench_preset_tune] " << w.name << " ..." << std::flush;
    rows.push_back(sweep(w, presets, opt));
    const auto& r = rows.back();
    for (const auto& c : r.cells) {
      std::cerr << "  " << c.preset << "=" << (c.ok ? "" : "FAIL ") << c.wall_ms << "ms";
      all_ok = all_ok && c.ok;
    }
    std::cerr << "  -> winner: " << (r.winner.empty() ? "(none)" : r.winner) << "\n";
  }

  write_json(opt.out, opt, presets, rows);
  std::cerr << "[bench_preset_tune] wrote " << opt.out << "\n";
  if (opt.assert_ok && !all_ok) {
    std::cerr << "[bench_preset_tune] FAIL: a (workload, preset) cell did not certify\n";
    return 1;
  }
  return 0;
}
