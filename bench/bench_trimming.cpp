// Experiment L3.7 — Trimming: work Õ(|E(A, V\A)|/φ^4), depth Õ(1/φ^3).
// Sweep the boundary size and φ; work should track boundary, not m.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "expander/trimming.hpp"
#include "graph/generators.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

void BM_Trimming(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto deletions = static_cast<int>(state.range(1));
  par::Rng rng(19);
  auto g = graph::random_regular_expander(n, 4, rng);
  std::vector<std::int64_t> boundary(static_cast<std::size_t>(n), 0);
  auto live = g.live_edges();
  for (int k = 0; k < deletions; ++k) {
    const auto e = live[rng.next_below(live.size())];
    if (!g.is_live(e)) continue;
    const auto ep = g.endpoints(e);
    boundary[static_cast<std::size_t>(ep.u)] += 1;
    boundary[static_cast<std::size_t>(ep.v)] += 1;
    g.delete_edge(e);
  }
  std::int64_t removed_vol = 0;
  std::uint64_t scans = 0;
  bench::run_instrumented(state, [&] {
    std::vector<char> in_a(static_cast<std::size_t>(n), 1);
    const auto r = expander::trimming(g, in_a, boundary, {.phi = 0.1});
    removed_vol = r.removed_volume;
    scans = r.edge_scans;
    benchmark::DoNotOptimize(r.flow.data());
  });
  state.counters["removed_volume"] = static_cast<double>(removed_vol);
  state.counters["edge_scans"] = static_cast<double>(scans);
  state.counters["m"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_Trimming)
    ->Args({200, 2})
    ->Args({200, 8})
    ->Args({200, 32})
    ->Args({800, 8})
    ->Args({3200, 8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
