// Kill-and-restart recovery harness for the instance-store durability layer
// (DESIGN.md §16, EXPERIMENTS.md "Crash harness").
//
// The parent process forks a worker that runs an Engine with persistence on
// a shared state directory — registering instances and hammering them with
// seeded deltas, so the journal is being appended (and snapshots rotated)
// essentially continuously — then SIGKILLs it at a seeded random point a
// few hundred microseconds to tens of milliseconds in. A forked checker
// then recovers from the surviving files and asserts the consistency
// contract on every recovered instance:
//
//   resolve(h, {}) succeeds, is certified, and its cost/flow equal a cold
//   solve of the recovered instance's live graph.
//
// Dropped records and journal truncations are acceptable (a crash may lose
// the unacknowledged tail); a miscertified or wrong recovered optimum never
// is. State persists across kills, so later iterations recover from disk
// images that themselves survived earlier crashes.
//
// The parent never constructs an Engine (or any threads) before forking;
// workers and checkers each build their own in their own process.
//
// Usage: crash_harness [--kills N] [--seed S] [--dir PATH]
//                      [--snapshot-every K] [--keep-dir]

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "mcf/engine.hpp"
#include "mcf/min_cost_flow.hpp"
#include "mcf/store_persist.hpp"
#include "parallel/rng.hpp"

namespace {

namespace mcf = pmcf::mcf;
namespace par = pmcf::par;
namespace graph = pmcf::graph;

using graph::Digraph;
using graph::EdgeId;
using graph::Vertex;
using pmcf::Engine;
using pmcf::EngineConfig;
using pmcf::Instance;
using pmcf::InstanceDelta;
using pmcf::InstanceHandle;
using pmcf::SolveStatus;

struct Options {
  int kills = 20;
  std::uint64_t seed = 1234;
  std::string dir;
  std::size_t snapshot_every = 4;
  bool keep_dir = false;
};

mcf::SolveOptions combinatorial_opts() {
  mcf::SolveOptions opts;
  opts.method = mcf::Method::kCombinatorial;
  return opts;
}

mcf::SolveOptions ipm_opts() {
  mcf::SolveOptions opts;
  opts.ipm.mu_end = 1e-3;
  opts.ipm.leverage.sketch_dim = 8;
  return opts;
}

EngineConfig persist_cfg(const Options& opt, std::uint64_t seed) {
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.use_global_pool = false;
  cfg.persist_dir = opt.dir;
  cfg.persist_snapshot_every = opt.snapshot_every;
  return cfg;
}

/// A live original arc id of `rec` (value changes / removals address
/// original ids; the compact→original map enumerates exactly the live ones).
EdgeId live_arc(const pmcf::InstanceRecord& rec, std::uint64_t draw) {
  if (!rec.compacted || rec.orig_of.empty()) {
    return static_cast<EdgeId>(
        draw % static_cast<std::uint64_t>(rec.solver_graph.num_arcs()));
  }
  return rec.orig_of[draw % rec.orig_of.size()];
}

/// Runs until SIGKILLed (iteration cap only as a leak-proof backstop).
[[noreturn]] void run_worker(const Options& opt, std::uint64_t kill_index) {
  const std::uint64_t seed = opt.seed * 1000003u + kill_index;
  const Engine engine(persist_cfg(opt, seed));
  while (engine.num_instances() < 3) {
    par::Rng grng(opt.seed * 131 + engine.num_instances());
    const Digraph g = graph::random_flow_network(10, 36, 8, 7, grng);
    if (engine.register_instance(Instance::max_flow(g, 0, g.num_vertices() - 1)) == 0)
      _exit(2);
  }
  const std::vector<InstanceHandle> handles = engine.instance_handles();
  par::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (std::uint64_t iter = 0; iter < 200000; ++iter) {
    const InstanceHandle h = handles[rng.next_u64() % handles.size()];
    const auto rec = engine.inspect_instance(h);
    if (rec == nullptr) _exit(2);
    InstanceDelta d;
    const std::uint64_t roll = rng.next_u64() % 10;
    if (roll < 6) {
      d.cost_changes.push_back(
          {live_arc(*rec, rng.next_u64()), static_cast<std::int64_t>(rng.next_u64() % 8)});
    } else if (roll < 8) {
      d.cap_changes.push_back(
          {live_arc(*rec, rng.next_u64()), static_cast<std::int64_t>(rng.next_u64() % 9)});
    } else if (roll == 8) {
      const auto n = static_cast<std::uint64_t>(rec->solver_graph.num_vertices());
      const auto from = static_cast<Vertex>(rng.next_u64() % n);
      const auto to = static_cast<Vertex>((from + 1 + rng.next_u64() % (n - 1)) % n);
      d.add_arcs.push_back({from, to, static_cast<std::int64_t>(1 + rng.next_u64() % 8),
                            static_cast<std::int64_t>(rng.next_u64() % 8)});
    } else if (rec->solver_graph.num_arcs() > 20) {
      d.remove_arcs.push_back(live_arc(*rec, rng.next_u64()));
    }
    // The occasional IPM re-solve keeps warm central-path artifacts flowing
    // into snapshots; the combinatorial bulk keeps the journal append rate
    // high so kills land mid-append.
    const auto res =
        engine.resolve(h, d, iter % 7 == 0 ? ipm_opts() : combinatorial_opts());
    if (res.result.status != SolveStatus::kOk &&
        res.result.status != SolveStatus::kInvalidInput) {
      _exit(2);  // max-flow deltas must never produce another status
    }
  }
  _exit(0);
}

/// Recover and verify; exit status is the verdict.
[[noreturn]] void run_checker(const Options& opt, std::uint64_t kill_index) {
  const Engine engine(persist_cfg(opt, opt.seed * 7919u + kill_index));
  const pmcf::RecoveryReport rep = engine.persist_recovery();
  bool ok = true;
  std::size_t checked = 0;
  for (const InstanceHandle h : engine.instance_handles()) {
    const auto rec = engine.inspect_instance(h);
    if (rec == nullptr) {
      ok = false;
      break;
    }
    const Digraph live = rec->solver_graph;  // copy before resolving
    const Vertex s = rec->source;
    const Vertex t = rec->sink;
    const auto replay = engine.resolve(h, {}, combinatorial_opts());
    EngineConfig cold_cfg;
    cold_cfg.use_global_pool = false;
    const Engine cold_engine(cold_cfg);
    const auto cold =
        cold_engine.solve(Instance::max_flow(live, s, t), combinatorial_opts());
    if (replay.result.status != SolveStatus::kOk || !replay.result.stats.certified ||
        cold.result.status != SolveStatus::kOk ||
        replay.result.cost != cold.result.cost ||
        replay.result.flow_value != cold.result.flow_value) {
      std::fprintf(stderr,
                   "[crash_harness] kill %llu: handle %llu INCONSISTENT "
                   "(replay status=%d certified=%d cost=%lld flow=%lld / "
                   "cold status=%d cost=%lld flow=%lld)\n",
                   static_cast<unsigned long long>(kill_index),
                   static_cast<unsigned long long>(h),
                   static_cast<int>(replay.result.status),
                   static_cast<int>(replay.result.stats.certified),
                   static_cast<long long>(replay.result.cost),
                   static_cast<long long>(replay.result.flow_value),
                   static_cast<int>(cold.result.status),
                   static_cast<long long>(cold.result.cost),
                   static_cast<long long>(cold.result.flow_value));
      ok = false;
    }
    ++checked;
  }
  std::printf(
      "[crash_harness] kill %llu: gen=%llu recovered=%zu dropped=%zu "
      "optima=%zu replayed=%zu truncations=%zu fallbacks=%zu checked=%zu %s\n",
      static_cast<unsigned long long>(kill_index),
      static_cast<unsigned long long>(rep.generation), rep.records_recovered,
      rep.records_dropped, rep.optima_recovered, rep.journal_frames_replayed,
      rep.journal_truncations, rep.snapshot_fallbacks, checked,
      ok ? "CONSISTENT" : "FAILED");
  std::fflush(stdout);
  std::fflush(stderr);
  _exit(ok ? 0 : 1);
}

/// Fork `fn(opt, k)`; returns the child's exit status (-1 on signal death).
template <typename Fn>
int in_child(Fn fn, const Options& opt, std::uint64_t k, pid_t* pid_out = nullptr) {
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(3);
  }
  if (pid == 0) fn(opt, k);  // never returns
  if (pid_out != nullptr) {
    *pid_out = pid;
    return 0;
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(3);
      }
      return argv[++i];
    };
    if (arg == "--kills") {
      opt.kills = std::atoi(next());
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--dir") {
      opt.dir = next();
      opt.keep_dir = true;
    } else if (arg == "--snapshot-every") {
      opt.snapshot_every = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--keep-dir") {
      opt.keep_dir = true;
    } else {
      std::fprintf(stderr,
                   "usage: crash_harness [--kills N] [--seed S] [--dir PATH] "
                   "[--snapshot-every K] [--keep-dir]\n");
      return arg == "--help" ? 0 : 3;
    }
  }
  if (opt.dir.empty()) {
    char tmpl[] = "/tmp/pmcf_crash_XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      std::perror("mkdtemp");
      return 3;
    }
    opt.dir = tmpl;
  }
  std::filesystem::create_directories(opt.dir);
  std::printf("[crash_harness] dir=%s kills=%d seed=%llu snapshot_every=%zu\n",
              opt.dir.c_str(), opt.kills, static_cast<unsigned long long>(opt.seed),
              opt.snapshot_every);
  std::fflush(stdout);  // forked children inherit (and would replay) the buffer

  par::Rng kill_rng(opt.seed);
  int failures = 0;
  for (int k = 0; k < opt.kills; ++k) {
    pid_t worker = 0;
    in_child(run_worker, opt, static_cast<std::uint64_t>(k), &worker);
    // Seeded kill point: mid-recovery, mid-append, or mid-snapshot.
    usleep(static_cast<useconds_t>(500 + kill_rng.next_u64() % 30000));
    kill(worker, SIGKILL);
    int status = 0;
    waitpid(worker, &status, 0);
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "[crash_harness] worker %d died on its own: exit %d\n", k,
                   WEXITSTATUS(status));
      ++failures;
      continue;
    }
    if (in_child(run_checker, opt, static_cast<std::uint64_t>(k)) != 0) ++failures;
  }

  if (failures == 0 && !opt.keep_dir) std::filesystem::remove_all(opt.dir);
  if (failures != 0) {
    std::printf("[crash_harness] FAIL: %d of %d kills left inconsistent state (dir kept: %s)\n",
                failures, opt.kills, opt.dir.c_str());
    return 1;
  }
  std::printf("[crash_harness] PASS: %d kills, every restart recovered consistent state\n",
              opt.kills);
  return 0;
}
