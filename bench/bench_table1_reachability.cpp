// Experiment T1-R — Table 1 (right): parallel reachability.
//
// Paper rows reproduced: parallel BFS (O(m) work, Õ(n) depth — depth grows
// with the diameter) versus flow-based reachability through the IPM
// (Corollary 1.5: Õ(√n) depth). On long-diameter layered digraphs BFS depth
// scales linearly in the number of layers while the IPM's depth is driven by
// its Õ(√n) iterations.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "mcf/reachability.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

void BM_ParallelBfs(benchmark::State& state) {
  const auto layers = static_cast<graph::Vertex>(state.range(0));
  par::Rng rng(7);
  auto g = graph::layered_digraph(layers, 4, 0.3, rng);
  g.build_csr();
  std::int32_t rounds = 0;
  bench::run_instrumented(state, [&] {
    const auto res = graph::parallel_bfs(g, 0);
    rounds = res.rounds;
    benchmark::DoNotOptimize(res.dist.data());
  });
  state.counters["bfs_rounds"] = rounds;  // the depth driver: Θ(diameter)
}
BENCHMARK(BM_ParallelBfs)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_FlowReachability(benchmark::State& state) {
  const auto layers = static_cast<graph::Vertex>(state.range(0));
  par::Rng rng(7);
  auto g = graph::layered_digraph(layers, 4, 0.3, rng);
  std::int32_t iters = 0;
  bench::run_instrumented(state, [&] {
    mcf::SolveOptions opts;
    opts.ipm.mu_end = 1e-3;
    opts.ipm.leverage.sketch_dim = 8;
    const auto res = mcf::reachability(g, 0, opts);
    iters = res.stats.ipm_iterations;
    benchmark::DoNotOptimize(res.reachable.data());
  });
  state.counters["ipm_iters"] = iters;  // the depth driver: Õ(√n)
}
BENCHMARK(BM_FlowReachability)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
