// Experiments C1.3-1.5 — corollaries via min-cost flow vs combinatorial
// oracles: bipartite matching (vs Hopcroft-Karp), negative-weight SSSP (vs
// Bellman-Ford), with work/depth counters for both sides.

#include <benchmark/benchmark.h>

#include "baselines/bellman_ford.hpp"
#include "baselines/hopcroft_karp.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "mcf/bipartite_matching.hpp"
#include "mcf/sssp.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

mcf::SolveOptions fast_opts() {
  mcf::SolveOptions o;
  o.ipm.mu_end = 1e-3;
  o.ipm.leverage.sketch_dim = 8;
  return o;
}

void BM_MatchingViaFlow(benchmark::State& state) {
  const auto nl = static_cast<graph::Vertex>(state.range(0));
  par::Rng rng(47);
  const auto g = graph::random_bipartite(nl, nl, 0.2, rng);
  std::int64_t size = 0;
  bench::run_instrumented(state, [&] {
    const auto res = mcf::bipartite_matching(g, nl, nl, fast_opts());
    size = res.size;
  });
  state.counters["matching"] = static_cast<double>(size);
}
BENCHMARK(BM_MatchingViaFlow)->Arg(8)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_MatchingHopcroftKarp(benchmark::State& state) {
  const auto nl = static_cast<graph::Vertex>(state.range(0));
  par::Rng rng(47);
  const auto g = graph::random_bipartite(nl, nl, 0.2, rng);
  std::int64_t size = 0;
  bench::run_instrumented(state, [&] {
    const auto res = baselines::hopcroft_karp(g, nl, nl);
    size = res.size;
  });
  state.counters["matching"] = static_cast<double>(size);
}
BENCHMARK(BM_MatchingHopcroftKarp)->Arg(8)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SsspViaFlow(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  par::Rng rng(53);
  const auto g = graph::random_negative_dag(n, 4 * n, 5, 10, rng);
  bench::run_instrumented(state, [&] {
    const auto res = mcf::shortest_paths(g, 0, fast_opts());
    benchmark::DoNotOptimize(res.dist.data());
  });
}
BENCHMARK(BM_SsspViaFlow)->Arg(10)->Arg(14)->Arg(20)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SsspBellmanFord(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  par::Rng rng(53);
  const auto g = graph::random_negative_dag(n, 4 * n, 5, 10, rng);
  bench::run_instrumented(state, [&] {
    const auto res = baselines::bellman_ford(g, 0);
    benchmark::DoNotOptimize(res.dist.data());
  });
}
BENCHMARK(BM_SsspBellmanFord)->Arg(10)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
