// Experiment A.1 — SDD solver (Lemma A.1 substitute).
//
// Paper claim: (A^T D A) x = b solvable with Õ(nnz(A) log W log 1/eps) work.
// We sweep dense random networks and report PRAM work/depth and CG iterations
// for IPM-typical diagonal scalings. Shape check: work grows ~linearly in m
// for fixed conditioning family.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/solver_context.hpp"
#include "graph/generators.hpp"
#include "linalg/incidence.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/sdd_solver.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace pmcf;

void BM_SddSolve(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const auto m = static_cast<std::int64_t>(n) * static_cast<std::int64_t>(state.range(1));
  par::Rng rng(12345);
  const graph::Digraph g = graph::random_flow_network(n, m, 100, 100, rng);
  const linalg::IncidenceOp a(g);

  linalg::Vec d(a.rows());
  for (auto& x : d) x = 0.5 + rng.next_double();
  linalg::Vec b(a.cols());
  for (auto& x : b) x = rng.next_double() - 0.5;
  b[static_cast<std::size_t>(a.dropped())] = 0.0;

  std::int32_t iters = 0;
  pmcf::bench::run_instrumented(state, [&] {
    const linalg::Csr lap = linalg::reduced_laplacian(g, d, a.dropped());
    const auto res = linalg::solve_sdd(pmcf::core::default_context(), lap, b, {.tolerance = 1e-8, .max_iters = 2000});
    iters = res.iterations;
    benchmark::DoNotOptimize(res.x.data());
  });
  state.counters["cg_iters"] = iters;
  state.counters["m"] = static_cast<double>(m);
}

BENCHMARK(BM_SddSolve)
    ->Args({64, 8})
    ->Args({128, 8})
    ->Args({256, 8})
    ->Args({512, 8})
    ->Args({256, 16})
    ->Args({256, 32})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
