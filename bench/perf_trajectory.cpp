// Perf-trajectory driver: wall-clock scaling of the real runtime.
//
// Unlike the google-benchmark binaries (which report PRAM counters under the
// instrumented tracker), this driver measures the *actual* shared-memory
// runtime: every workload is first run once in instrumented mode to capture
// the model-level work/depth, then timed with the tracker disabled across a
// sweep of thread-pool sizes. The output is a single JSON document
// (schema "pmcf-perf-trajectory-v1", checked in as BENCH_pr<N>.json per PR)
// so perf trajectories can be diffed across PRs.
//
// Usage:
//   perf_trajectory [--out=FILE] [--threads=1,2,8] [--scale=tiny|full]
//                   [--reps=N]
//
// `--scale=tiny` shrinks every instance so the whole sweep finishes in a few
// seconds; CI uses it as a smoke test. Reported wall times are the minimum
// over `reps` runs (after one warmup) — minimum, not mean, because scheduler
// noise is strictly additive.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "expander/unit_flow.hpp"
#include "core/solver_context.hpp"
#include "graph/generators.hpp"
#include "mcf/engine.hpp"
#include "linalg/accel_cache.hpp"
#include "linalg/incidence.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/preconditioner.hpp"
#include "linalg/sdd_solver.hpp"
#include "core/deadline.hpp"
#include "mcf/certify.hpp"
#include "mcf/min_cost_flow.hpp"
#include "mcf/reachability.hpp"
#include "parallel/rng.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_depth.hpp"
#include "soak_harness.hpp"

namespace {

using namespace pmcf;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string out = "BENCH_pr9.json";
  std::vector<int> threads = {1, 2, 8};
  bool tiny = false;
  int reps = 5;
  bool list = false;
};

struct ThreadPoint {
  int threads = 1;
  double wall_ms = 0.0;
  double speedup = 1.0;
};

struct WorkloadReport {
  std::string name;
  std::string kind;  // "table1" | "component" | "serving" | "soak"
  std::uint64_t work = 0;
  std::uint64_t depth = 0;
  std::vector<ThreadPoint> points;
  /// Pre-rendered JSON object with workload-specific metrics (soak reports:
  /// latency percentiles, shed rate, per-priority goodput). Empty = absent.
  std::string extras_json;
};

/// A workload is (setup-once state captured in the closure) + a body that can
/// be run repeatedly. Bodies must be deterministic and self-contained. A
/// workload with `standalone` set manages its own threads and timing (the
/// soak harness drives client threads against a shared Engine); it is run
/// once instead of going through the instrumented pass + thread sweep.
struct Workload {
  std::string name;
  std::string kind;
  std::function<void()> body;
  std::function<WorkloadReport()> standalone;
};

double time_once_ms(const std::function<void()>& body) {
  const auto t0 = Clock::now();
  body();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

WorkloadReport measure(const Workload& w, const Options& opt) {
  WorkloadReport rep;
  rep.name = w.name;
  rep.kind = w.kind;

  // Instrumented pass: single-threaded, deterministic PRAM counters.
  par::ThreadPool::configure(1);
  par::Tracker::instance().set_enabled(true);
  par::Tracker::instance().reset();
  w.body();
  const par::Cost c = par::snapshot();
  rep.work = c.work;
  rep.depth = c.depth;

  // Wall-clock sweep: tracker off, pool per thread count.
  par::Tracker::instance().set_enabled(false);
  for (const int t : opt.threads) {
    par::ThreadPool::configure(static_cast<std::size_t>(t));
    w.body();  // warmup (first-touch, pool spin-up)
    double best = 1e300;
    for (int r = 0; r < opt.reps; ++r) best = std::min(best, time_once_ms(w.body));
    rep.points.push_back({t, best, 1.0});
  }
  par::ThreadPool::configure(1);
  par::Tracker::instance().set_enabled(true);

  const double base = rep.points.empty() ? 0.0 : rep.points.front().wall_ms;
  for (auto& p : rep.points) p.speedup = p.wall_ms > 0.0 ? base / p.wall_ms : 0.0;
  return rep;
}

// ---------------------------------------------------------------------------
// Workload definitions. Sizes mirror the largest google-benchmark Args so the
// JSON rows line up with the EXPERIMENTS.md tables.

Workload make_sdd_solver(bool tiny) {
  const auto n = static_cast<graph::Vertex>(tiny ? 64 : 512);
  const std::int64_t m = static_cast<std::int64_t>(n) * 8;
  par::Rng rng(12345);
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, m, 100, 100, rng));
  const linalg::IncidenceOp a(*g);
  auto d = std::make_shared<linalg::Vec>(a.rows());
  for (auto& x : *d) x = 0.5 + rng.next_double();
  auto b = std::make_shared<linalg::Vec>(a.cols());
  for (auto& x : *b) x = rng.next_double() - 0.5;
  (*b)[static_cast<std::size_t>(a.dropped())] = 0.0;
  const auto dropped = a.dropped();
  return {"sdd_solver_cg", "component", [g, d, b, dropped] {
            const linalg::Csr lap = linalg::reduced_laplacian(*g, *d, dropped);
            const auto res = linalg::solve_sdd(pmcf::core::default_context(), lap, *b, {.tolerance = 1e-8, .max_iters = 2000});
            if (res.x.empty()) std::abort();
          }};
}

Workload make_unit_flow(bool tiny) {
  const auto n = static_cast<graph::Vertex>(tiny ? 500 : 8000);
  par::Rng rng(17);
  auto g = std::make_shared<graph::UndirectedGraph>(graph::random_regular_expander(n, 4, rng));
  auto p = std::make_shared<expander::UnitFlowProblem>();
  p->g = g.get();
  p->cap.assign(g->edge_slots(), 8);
  p->source.assign(static_cast<std::size_t>(n), 0);
  p->sink.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t k = 0; k < 2; ++k)
    p->source[rng.next_below(static_cast<std::uint64_t>(n))] += 6 * 8;
  for (graph::Vertex v = 0; v < n; ++v) p->sink[static_cast<std::size_t>(v)] = g->degree(v) / 2;
  p->height = 24;
  return {"unit_flow", "component", [g, p] {
            const auto r = expander::parallel_unit_flow(*p);
            if (r.flow.empty()) std::abort();
          }};
}

Workload make_table1_mincostflow(bool tiny) {
  const auto n = static_cast<graph::Vertex>(tiny ? 12 : 32);
  par::Rng rng(42);
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, 8 * n, 6, 6, rng));
  return {"table1_mincostflow_reference_ipm", "table1", [g, n] {
            mcf::SolveOptions opts;
            opts.ipm.mu_end = 1e-3;
            opts.ipm.leverage.sketch_dim = 8;
            const auto res = mcf::min_cost_max_flow(*g, 0, n - 1, opts);
            (void)res.cost;
          }};
}

Workload make_table1_reachability(bool tiny) {
  const auto layers = static_cast<graph::Vertex>(tiny ? 8 : 16);
  par::Rng rng(7);
  auto g = std::make_shared<graph::Digraph>(graph::layered_digraph(layers, 4, 0.3, rng));
  return {"table1_reachability_flow", "table1", [g] {
            mcf::SolveOptions opts;
            opts.ipm.mu_end = 1e-3;
            opts.ipm.leverage.sketch_dim = 8;
            const auto res = mcf::reachability(*g, 0, opts);
            (void)res.reachable;
          }};
}

Workload make_reduce(bool tiny) {
  const std::size_t n = tiny ? (1u << 14) : (1u << 22);
  auto v = std::make_shared<std::vector<double>>(n);
  par::Rng rng(3);
  for (auto& x : *v) x = rng.next_double();
  return {"parallel_reduce", "component", [v, n] {
            double acc = 0.0;
            for (int rep = 0; rep < 8; ++rep)
              acc += par::parallel_reduce<double>(
                  0, n, 0.0, [&](std::size_t i) { return (*v)[i]; },
                  [](double a, double b) { return a + b; });
            if (acc < 0.0) std::abort();
          }};
}

Workload make_scan(bool tiny) {
  const std::size_t n = tiny ? (1u << 14) : (1u << 22);
  auto v = std::make_shared<std::vector<std::int64_t>>(n);
  par::Rng rng(5);
  for (auto& x : *v) x = static_cast<std::int64_t>(rng.next_below(1000));
  return {"exclusive_scan", "component", [v] {
            for (int rep = 0; rep < 4; ++rep) {
              auto [out, total] = par::exclusive_scan(*v);
              if (total < 0 || out.size() != v->size()) std::abort();
            }
          }};
}

Workload make_pack(bool tiny) {
  const std::size_t n = tiny ? (1u << 14) : (1u << 22);
  auto v = std::make_shared<std::vector<std::uint64_t>>(n);
  par::Rng rng(9);
  for (auto& x : *v) x = rng.next_below(1000);
  return {"pack_indices", "component", [v, n] {
            for (int rep = 0; rep < 4; ++rep) {
              const auto idx = par::pack_indices(n, [&](std::size_t i) { return (*v)[i] < 500; });
              if (idx.size() > n) std::abort();
            }
          }};
}

Workload make_sort(bool tiny) {
  const std::size_t n = tiny ? (1u << 14) : (1u << 21);
  auto v = std::make_shared<std::vector<std::uint64_t>>(n);
  par::Rng rng(11);
  for (auto& x : *v) x = rng.next_below(~0ull);
  return {"parallel_sort", "component", [v] {
            std::vector<std::uint64_t> copy = *v;
            par::parallel_sort(copy.begin(), copy.end());
            if (!std::is_sorted(copy.begin(), copy.end())) std::abort();
          }};
}

Workload make_spmv(bool tiny) {
  const auto n = static_cast<graph::Vertex>(tiny ? 128 : 2048);
  const std::int64_t m = static_cast<std::int64_t>(n) * 16;
  par::Rng rng(23);
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, m, 100, 100, rng));
  const linalg::IncidenceOp a(*g);
  linalg::Vec d(a.rows());
  for (auto& x : d) x = 0.5 + rng.next_double();
  auto lap = std::make_shared<linalg::Csr>(linalg::reduced_laplacian(*g, d, a.dropped()));
  auto x = std::make_shared<linalg::Vec>(a.cols());
  for (auto& xi : *x) xi = rng.next_double() - 0.5;
  return {"csr_spmv", "component", [lap, x] {
            linalg::Vec y(x->size());
            for (int rep = 0; rep < 64; ++rep) lap->apply_into(rep % 2 ? y : *x, rep % 2 ? *x : y);
          }};
}

Workload make_kernel_spmv(bool tiny) {
  // The raw SpMV kernel through the Csr dispatch (DESIGN.md §13): in the
  // serial wall configuration this runs the SELL-4-σ gather kernel over the
  // RCM-renumbered layout; with PMCF_SIMD=OFF (or under the tracker) it is
  // the plain CSR row walk. Values are refreshed between reps so the lazy
  // value-regather path is part of what is measured, as it is inside an IPM.
  const auto n = static_cast<graph::Vertex>(tiny ? 128 : 1536);
  const std::int64_t m = static_cast<std::int64_t>(n) * 24;
  par::Rng rng(29);
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, m, 100, 100, rng));
  const linalg::IncidenceOp a(*g);
  linalg::Vec d(a.rows());
  for (auto& x : d) x = 0.5 + rng.next_double();
  auto lap = std::make_shared<linalg::Csr>(linalg::reduced_laplacian(*g, d, a.dropped()));
  auto x = std::make_shared<linalg::Vec>(a.cols());
  for (auto& xi : *x) xi = rng.next_double() - 0.5;
  return {"kernel_spmv", "component", [lap, x] {
            linalg::Vec y(x->size());
            for (int chunk = 0; chunk < 4; ++chunk) {
              for (auto& v : lap->vals_mut()) v *= chunk % 2 ? 0.5 : 2.0;
              for (int rep = 0; rep < 24; ++rep)
                lap->apply_into(rep % 2 ? y : *x, rep % 2 ? *x : y);
            }
          }};
}

Workload make_kernel_fused_cg(bool tiny) {
  // The fused CG iteration kernels in isolation: one SpMV + dot + fused
  // step/residual + fused Jacobi refresh + axpby per "iteration", the exact
  // per-iteration kernel sequence of solve_sdd minus convergence control.
  // Isolating them makes kernel-layer regressions visible without the solver
  // iteration count in the way.
  const auto n = static_cast<graph::Vertex>(tiny ? 128 : 1024);
  const std::int64_t m = static_cast<std::int64_t>(n) * 16;
  par::Rng rng(31);
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, m, 100, 100, rng));
  const linalg::IncidenceOp a(*g);
  linalg::Vec d(a.rows());
  for (auto& x : d) x = 0.5 + rng.next_double();
  auto lap = std::make_shared<linalg::Csr>(linalg::reduced_laplacian(*g, d, a.dropped()));
  auto dinv = std::make_shared<linalg::Vec>(lap->dim());
  lap->diagonal_into(*dinv);
  for (auto& v : *dinv) v = 1.0 / v;
  auto b = std::make_shared<linalg::Vec>(lap->dim());
  for (auto& x : *b) x = rng.next_double() - 0.5;
  return {"kernel_fused_cg", "component", [lap, dinv, b] {
            const std::size_t n2 = lap->dim();
            linalg::Vec x(n2, 0.0), r = *b, z(n2), p(n2), mp(n2);
            double rz = linalg::precond_refresh(*dinv, r, z);
            p = z;
            for (int it = 0; it < 200; ++it) {
              lap->apply_into(p, mp);
              const double pmp = linalg::dot(p, mp);
              const double alpha = rz / pmp;
              const double rr = linalg::cg_step_residual(x, r, p, mp, alpha);
              if (rr < 0.0) std::abort();
              const double rz_new = linalg::precond_refresh(*dinv, r, z);
              linalg::axpby(p, rz_new / rz, z, 1.0);
              rz = rz_new;
            }
            if (!(linalg::dot(x, x) >= 0.0)) std::abort();
          }};
}

Workload make_sdd_multi_rhs(bool tiny) {
  // The blocked multi-RHS CG path (DESIGN.md §10): k right-hand sides against
  // one Laplacian share a single nnz-balanced SpMV per iteration instead of k
  // serial solves — the shape of the leverage-score sketch and the robust
  // step's dy/q pair.
  const auto n = static_cast<graph::Vertex>(tiny ? 64 : 512);
  const std::int64_t m = static_cast<std::int64_t>(n) * 8;
  const std::size_t k = tiny ? 8 : 32;
  par::Rng rng(606);
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, m, 100, 100, rng));
  const linalg::IncidenceOp a(*g);
  linalg::Vec d(a.rows());
  for (auto& x : d) x = 0.5 + rng.next_double();
  auto lap = std::make_shared<linalg::Csr>(linalg::reduced_laplacian(*g, d, a.dropped()));
  auto precond = std::make_shared<linalg::SddPreconditioner>();
  precond->build(*lap, linalg::PrecondKind::kIncompleteCholesky);
  auto rhs = std::make_shared<std::vector<linalg::Vec>>(k, linalg::Vec(a.cols()));
  for (auto& b : *rhs) {
    for (auto& x : b) x = rng.next_double() - 0.5;
    b[static_cast<std::size_t>(a.dropped())] = 0.0;
  }
  return {"sdd_multi_rhs", "component", [lap, precond, rhs] {
            const auto sols =
                linalg::solve_sdd_multi(pmcf::core::default_context(), *lap, *rhs, *precond,
                                        {.tolerance = 1e-8, .max_iters = 2000});
            for (const auto& s : sols)
              if (!s.converged) std::abort();
          }};
}

Workload make_precond_reuse(bool tiny) {
  // The preconditioner/Laplacian lifecycle across IPM-style iterations:
  // weights drift 5% per step, the Laplacian is value-refreshed in place,
  // the incomplete-Cholesky factor is reused until drift crosses the
  // staleness threshold, and each solve warm-starts from the previous
  // iterate — the per-iteration pattern of the Newton loop.
  const auto n = static_cast<graph::Vertex>(tiny ? 64 : 384);
  const std::int64_t m = static_cast<std::int64_t>(n) * 8;
  const int steps = tiny ? 6 : 16;
  par::Rng rng(707);
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, m, 100, 100, rng));
  const linalg::IncidenceOp a(*g);
  auto d0 = std::make_shared<linalg::Vec>(a.rows());
  for (auto& x : *d0) x = 0.5 + rng.next_double();
  auto b = std::make_shared<linalg::Vec>(a.cols());
  for (auto& x : *b) x = rng.next_double() - 0.5;
  (*b)[static_cast<std::size_t>(a.dropped())] = 0.0;
  const auto dropped = a.dropped();
  return {"precond_reuse", "component", [g, d0, b, dropped, steps] {
            auto& ctx = pmcf::core::default_context();
            linalg::AccelCache& cache = linalg::accel_cache(ctx);
            linalg::Vec w = *d0;
            for (int step = 0; step < steps; ++step) {
              for (auto& x : w) x *= 1.05;
              const linalg::Csr& lap = cache.laplacian(ctx, *g, w, dropped);
              const linalg::SddPreconditioner& pc =
                  cache.preconditioner(ctx, linalg::AccelSite::kNewton, lap, w);
              linalg::Vec& warm = cache.warm_start(linalg::AccelSite::kNewton, 0, lap.dim());
              const auto res = linalg::solve_sdd(ctx, lap, *b, pc,
                                                 {.tolerance = 1e-8, .max_iters = 2000}, &warm);
              if (!res.converged) std::abort();
              warm = res.x;
            }
          }};
}

Workload make_ipm_iterations(bool tiny) {
  // IPM-iteration-dominated end-to-end solve: bigger than the table1 row so
  // the per-iteration costs (Laplacian refresh, cached preconditioner,
  // batched leverage sketch, warm-started Newton) dominate setup/rounding.
  const auto n = static_cast<graph::Vertex>(tiny ? 14 : 48);
  par::Rng rng(53);
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, 8 * n, 6, 6, rng));
  return {"ipm_iterations", "table1", [g, n] {
            mcf::SolveOptions opts;
            opts.ipm.mu_end = 1e-3;
            opts.ipm.leverage.sketch_dim = 12;
            const auto res = mcf::min_cost_max_flow(*g, 0, n - 1, opts);
            if (res.status != SolveStatus::kOk) std::abort();
          }};
}

Workload make_engine_batch(bool tiny) {
  // Serving scenario: many independent small instances fanned across the
  // pool via Engine::solve_batch, one solve per task. Each solve runs under
  // its own instrumented SolverContext (single-threaded inside), so scaling
  // comes purely from solving instances concurrently — the throughput shape
  // a batch-serving deployment sees.
  const std::size_t batch_size = tiny ? 8 : 24;
  const auto n = static_cast<graph::Vertex>(tiny ? 10 : 14);
  auto graphs = std::make_shared<std::deque<graph::Digraph>>();
  for (std::size_t i = 0; i < batch_size; ++i) {
    par::Rng rng(9000 + 31 * i);
    graphs->push_back(graph::random_flow_network(n, 4 * n, 6, 6, rng));
  }
  auto batch = std::make_shared<std::vector<Instance>>();
  for (const auto& g : *graphs)
    batch->push_back(Instance::max_flow(g, 0, g.num_vertices() - 1));
  return {"engine_solve_batch", "serving", [graphs, batch] {
            const Engine engine({.seed = 4242});
            mcf::SolveOptions opts;
            opts.ipm.mu_end = 1e-3;
            opts.ipm.leverage.sketch_dim = 8;
            const auto results = engine.solve_batch(*batch, opts);
            // A batch of independent solves is PRAM work = sum, depth = max;
            // aggregate the per-solve trackers into the ambient one so the
            // instrumented pass reports the batch-level counters.
            std::uint64_t work = 0;
            std::uint64_t depth = 0;
            for (const auto& r : results) {
              if (r.result.status != SolveStatus::kOk) std::abort();
              work += r.pram.work;
              depth = std::max(depth, r.pram.depth);
            }
            par::charge(work, depth);
          }};
}

Workload make_engine_deadline_shed(bool tiny) {
  // Serving under pressure (DESIGN.md §11): a batch where half the items
  // carry already-expired deadlines and admission control only has slots for
  // half of the rest. The measured path is the full lifecycle machinery —
  // armed polls inside the admitted solves, typed deadline shedding at
  // admission, and kLoadShed back-pressure — which must stay cheap relative
  // to the solves themselves.
  const std::size_t batch_size = tiny ? 8 : 24;
  const auto n = static_cast<graph::Vertex>(tiny ? 10 : 14);
  auto graphs = std::make_shared<std::deque<graph::Digraph>>();
  for (std::size_t i = 0; i < batch_size; ++i) {
    par::Rng rng(9500 + 31 * i);
    graphs->push_back(graph::random_flow_network(n, 4 * n, 6, 6, rng));
  }
  auto batch = std::make_shared<std::vector<Instance>>();
  for (std::size_t i = 0; i < batch_size; ++i) {
    Instance inst = Instance::max_flow((*graphs)[i], 0, (*graphs)[i].num_vertices() - 1);
    // Odd items expired before the batch was even submitted; even items get a
    // generous (but armed) budget so every poll site pays the live-check cost.
    inst.deadline = i % 2 == 1
                        ? core::Deadline::at(core::Deadline::Clock::now() - std::chrono::seconds(1))
                        : core::Deadline::in(std::chrono::hours(1));
    batch->push_back(inst);
  }
  const std::size_t slots = batch_size / 2 + batch_size / 4;  // sheds the tail
  return {"engine_deadline_shed", "serving", [graphs, batch, batch_size, slots] {
            const Engine engine({.seed = 4243, .max_in_flight = slots});
            mcf::SolveOptions opts;
            opts.ipm.mu_end = 1e-3;
            opts.ipm.leverage.sketch_dim = 8;
            const auto results = engine.solve_batch(*batch, opts);
            std::uint64_t work = 0;
            std::uint64_t depth = 0;
            for (std::size_t i = 0; i < results.size(); ++i) {
              const SolveStatus st = results[i].result.status;
              const SolveStatus want = i >= slots            ? SolveStatus::kLoadShed
                                       : i % 2 == 1          ? SolveStatus::kDeadlineExceeded
                                                             : SolveStatus::kOk;
              if (st != want) std::abort();
              work += results[i].pram.work;
              depth = std::max(depth, results[i].pram.depth);
            }
            par::charge(work, depth);
          }};
}

WorkloadReport run_soak_report(const std::string& name, const soak::SoakConfig& cfg) {
  par::Tracker::instance().set_enabled(false);
  const auto t0 = Clock::now();
  const soak::SoakReport rep = soak::run_soak(cfg);
  const auto t1 = Clock::now();
  par::ThreadPool::configure(1);
  par::Tracker::instance().set_enabled(true);
  WorkloadReport out;
  out.name = name;
  out.kind = "soak";
  out.points.push_back(
      {static_cast<int>(cfg.workers),
       std::chrono::duration<double, std::milli>(t1 - t0).count(), 1.0});
  out.extras_json = rep.to_json(6);
  return out;
}

soak::SoakConfig soak_base_config(bool tiny) {
  soak::SoakConfig cfg;
  // Full scale satisfies the acceptance floor of >= 1e5 requests; tiny keeps
  // the CI smoke run to a couple of seconds. Both run at sustained 2x
  // overload: half of what is offered must shed (typed kLoadShed) or expire,
  // while priority-0 goodput stays high (eviction + DRR dequeue order).
  cfg.requests = tiny ? 2000 : 100000;
  // Engine/client/instance shape: SoakConfig defaults — the acceptance-gate
  // shape (1 slot, queue 12, 16 workers, 2x overload, 16-28 node instances).
  return cfg;
}

Workload make_engine_soak_poisson(bool tiny) {
  Workload w;
  w.name = "engine_soak_poisson";
  w.kind = "soak";
  w.standalone = [tiny] {
    soak::SoakConfig cfg = soak_base_config(tiny);
    cfg.arrivals = soak::ArrivalProcess::kPoisson;
    cfg.seed = 0x50a40001ULL;
    return run_soak_report("engine_soak_poisson", cfg);
  };
  return w;
}

Workload make_engine_soak_burst(bool tiny) {
  Workload w;
  w.name = "engine_soak_burst";
  w.kind = "soak";
  w.standalone = [tiny] {
    soak::SoakConfig cfg = soak_base_config(tiny);
    cfg.arrivals = soak::ArrivalProcess::kBurst;
    cfg.seed = 0x50a40002ULL;
    cfg.burst_factor = 8.0;
    return run_soak_report("engine_soak_burst", cfg);
  };
  return w;
}

Workload make_certify_overhead(bool tiny) {
  // The independent certification pass (exact __int128 feasibility + cost +
  // Bellman-Ford optimality + BFS maximality) on the Table-1 MCF row's
  // instance and solution. Compare this row's wall time against
  // table1_mincostflow_reference_ipm to get the certification overhead as a
  // fraction of the end-to-end solve — the acceptance bound is < 5%.
  const auto n = static_cast<graph::Vertex>(tiny ? 12 : 32);
  par::Rng rng(42);  // same instance as make_table1_mincostflow
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, 8 * n, 6, 6, rng));
  mcf::SolveOptions opts;
  opts.ipm.mu_end = 1e-3;
  opts.ipm.leverage.sketch_dim = 8;
  auto sol = std::make_shared<mcf::MinCostFlowResult>(mcf::min_cost_max_flow(*g, 0, n - 1, opts));
  if (sol->status != SolveStatus::kOk) std::abort();
  return {"certify_overhead", "table1", [g, n, sol] {
            const auto report =
                mcf::certify_max_flow(*g, 0, n - 1, sol->arc_flow, sol->flow_value, sol->cost);
            if (!report.certified) std::abort();
            // Model-level cost of the certificate: Bellman-Ford dominates at
            // O(n·m) work; the passes over arcs/vertices are Θ(m + n).
            const auto nn = static_cast<std::uint64_t>(g->num_vertices());
            const auto mm = static_cast<std::uint64_t>(g->num_arcs());
            par::charge(nn * mm + mm + nn, nn);
          }};
}

Workload make_preset_sweep(bool tiny) {
  // Every registered ingredient preset (DESIGN.md §14) solving the Table-1
  // MCF instance back to back — the matrix bench_preset_tune sweeps per
  // workload. Sketch width is left unpinned so each preset's own
  // SketchIngredient is part of what is measured; every answer must come
  // back kOk and carry its preset name in SolveStats.
  const auto n = static_cast<graph::Vertex>(tiny ? 12 : 28);
  par::Rng rng(61);
  auto g = std::make_shared<graph::Digraph>(graph::random_flow_network(n, 8 * n, 6, 6, rng));
  auto names = std::make_shared<std::vector<std::string>>(core::preset_registry().names());
  return {"preset_sweep", "table1", [g, n, names] {
            for (const std::string& preset : *names) {
              mcf::SolveOptions opts;
              opts.preset = preset;
              opts.ipm.mu_end = 1e-3;
              const auto res = mcf::min_cost_max_flow(*g, 0, n - 1, opts);
              if (res.status != SolveStatus::kOk || res.stats.preset != preset) std::abort();
            }
          }};
}

Workload make_incremental_resolve(bool tiny) {
  // The cross-solve instance cache (DESIGN.md §15) doing its headline job:
  // after one priming solve, every round perturbs ~1% of the arc costs by ±1
  // and re-solves warm through Engine::resolve — AccelCache adoption,
  // drift-gated preconditioner reuse, and a central-path restart at boosted
  // mu. Each round also solves the identical post-delta instance cold on a
  // separate engine; the report's extras carry the measured cold/warm wall
  // times, the warm speedup (acceptance gate: >= 3x at full scale, >= 1x in
  // the CI tiny smoke), and the engine's cache hit rate. Costs must agree
  // exactly every round — both sides are independently certified.
  Workload w;
  w.name = "incremental_resolve";
  w.kind = "serving";
  w.standalone = [tiny] {
    const auto n = static_cast<graph::Vertex>(tiny ? 12 : 48);
    const std::int64_t m = 8 * static_cast<std::int64_t>(n);
    const int rounds = tiny ? 3 : 8;
    par::Rng graph_rng(0x1c5e);
    const graph::Digraph g0 = graph::random_flow_network(n, m, 6, 6, graph_rng);
    graph::Digraph mirror = g0;  // tracks the deltas for the cold reference

    mcf::SolveOptions opts;
    opts.ipm.mu_end = 1e-3;
    opts.ipm.leverage.sketch_dim = 8;

    // Wall-clock serial on both sides: the acceptance comparison is at one
    // thread, with the tracker off (measure() is bypassed for standalones).
    par::ThreadPool::configure(1);
    par::Tracker::instance().set_enabled(false);
    EngineConfig cfg;
    cfg.seed = 4244;
    cfg.instrument = false;
    cfg.use_global_pool = false;
    const Engine warm_engine(cfg);
    const Engine cold_engine(cfg);

    const InstanceHandle h =
        warm_engine.register_instance(Instance::max_flow(g0, 0, n - 1));
    if (h == 0) std::abort();
    if (warm_engine.resolve(h, {}, opts).result.status != SolveStatus::kOk) std::abort();

    par::Rng delta_rng(0x1c5f);
    const auto num_perturb =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(m) / 100);
    double cold_ms = 0.0;
    double warm_ms = 0.0;
    const auto t_begin = Clock::now();
    for (int round = 0; round < rounds; ++round) {
      InstanceDelta delta;
      for (std::uint64_t k = 0; k < num_perturb; ++k) {
        const auto arc = static_cast<graph::EdgeId>(
            delta_rng.next_below(static_cast<std::uint64_t>(mirror.num_arcs())));
        const std::int64_t cost = std::max<std::int64_t>(
            0, mirror.arc(arc).cost + (delta_rng.next_below(2) == 0 ? -1 : 1));
        delta.cost_changes.push_back({arc, cost});
        mirror.set_cost(arc, cost);
      }
      EngineSolveResult warm;
      warm_ms += time_once_ms([&] { warm = warm_engine.resolve(h, delta, opts); });
      EngineSolveResult cold;
      cold_ms += time_once_ms(
          [&] { cold = cold_engine.solve(Instance::max_flow(mirror, 0, n - 1), opts); });
      if (warm.result.status != SolveStatus::kOk || cold.result.status != SolveStatus::kOk)
        std::abort();
      if (!warm.result.stats.certified || !warm.result.stats.warm_started) std::abort();
      if (warm.result.cost != cold.result.cost ||
          warm.result.flow_value != cold.result.flow_value)
        std::abort();
    }
    const auto t_end = Clock::now();
    par::ThreadPool::configure(1);
    par::Tracker::instance().set_enabled(true);

    const MetricsSnapshot snap = warm_engine.metrics_snapshot();
    const std::uint64_t hits = snap.of(EngineCounter::kInstanceCacheHits);
    const std::uint64_t misses = snap.of(EngineCounter::kInstanceCacheMisses);
    const double hit_rate =
        hits + misses == 0 ? 0.0
                           : static_cast<double>(hits) / static_cast<double>(hits + misses);
    WorkloadReport rep;
    rep.name = "incremental_resolve";
    rep.kind = "serving";
    rep.points.push_back(
        {1, std::chrono::duration<double, std::milli>(t_end - t_begin).count(), 1.0});
    char extras[256];
    std::snprintf(extras, sizeof(extras),
                  "{\"rounds\": %d, \"cold_ms\": %.4f, \"warm_ms\": %.4f, "
                  "\"warm_speedup\": %.3f, \"cache_hit_rate\": %.3f}",
                  rounds, cold_ms, warm_ms, warm_ms > 0.0 ? cold_ms / warm_ms : 0.0,
                  hit_rate);
    rep.extras_json = extras;
    return rep;
  };
  return w;
}

Workload make_instance_churn(bool tiny) {
  // A fleet of registered instances under churn against a bounded artifact
  // cache: every round perturbs each instance's costs and resolves it, and
  // every fifth resolve is a structural delta (arc addition) that bumps the
  // epoch and forces a cold re-solve. With capacity for only half the fleet,
  // the LRU evicts continuously — the workload measures the engine's
  // steady-state mix of replays, warm re-solves, cold solves, and evictions.
  const std::size_t fleet = tiny ? 4 : 8;
  const auto n = static_cast<graph::Vertex>(tiny ? 10 : 14);
  const int rounds = tiny ? 2 : 4;
  auto graphs = std::make_shared<std::deque<graph::Digraph>>();
  for (std::size_t i = 0; i < fleet; ++i) {
    par::Rng rng(9700 + 31 * i);
    graphs->push_back(graph::random_flow_network(n, 4 * n, 6, 6, rng));
  }
  return {"instance_churn", "serving", [graphs, fleet, rounds] {
            EngineConfig cfg;
            cfg.seed = 4245;
            cfg.instance_cache_capacity = fleet / 2;
            const Engine engine(cfg);
            mcf::SolveOptions opts;
            opts.ipm.mu_end = 1e-3;
            opts.ipm.leverage.sketch_dim = 8;

            std::vector<InstanceHandle> handles;
            for (const auto& g : *graphs) {
              handles.push_back(
                  engine.register_instance(Instance::max_flow(g, 0, g.num_vertices() - 1)));
              if (handles.back() == 0) std::abort();
            }
            std::uint64_t work = 0;
            std::uint64_t depth = 0;
            par::Rng rng(0xc4u);
            std::size_t tick = 0;
            for (int round = 0; round <= rounds; ++round) {
              for (std::size_t i = 0; i < fleet; ++i, ++tick) {
                InstanceDelta d;
                if (round > 0) {  // round 0 primes the cache with cold solves
                  const auto& g = (*graphs)[i];
                  if (tick % 5 == 4) {
                    const auto v = static_cast<graph::Vertex>(
                        rng.next_below(static_cast<std::uint64_t>(g.num_vertices())));
                    d.add_arcs.push_back({0, v == 0 ? g.num_vertices() - 1 : v, 3, 2});
                  } else {
                    for (int k = 0; k < 2; ++k) {
                      const auto arc = static_cast<graph::EdgeId>(
                          rng.next_below(static_cast<std::uint64_t>(g.num_arcs())));
                      d.cost_changes.push_back(
                          {arc, static_cast<std::int64_t>(rng.next_below(7))});
                    }
                  }
                }
                const EngineSolveResult r = engine.resolve(handles[i], d, opts);
                if (r.result.status != SolveStatus::kOk || !r.result.stats.certified)
                  std::abort();
                work += r.pram.work;
                depth += r.pram.depth;  // resolves run back to back (serial chain)
              }
            }
            par::charge(work, depth);
          }};
}

// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_json(const std::string& path, const Options& opt,
                const std::vector<WorkloadReport>& reports) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"pmcf-perf-trajectory-v1\",\n";
  os << "  \"scale\": \"" << (opt.tiny ? "tiny" : "full") << "\",\n";
  os << "  \"reps\": " << opt.reps << ",\n";
  os << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n";
  os << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    os << "      \"kind\": \"" << json_escape(r.kind) << "\",\n";
    os << "      \"pram_work\": " << r.work << ",\n";
    os << "      \"pram_depth\": " << r.depth << ",\n";
    if (!r.extras_json.empty()) os << "      \"metrics\": " << r.extras_json << ",\n";
    os << "      \"runs\": [\n";
    for (std::size_t j = 0; j < r.points.size(); ++j) {
      const auto& p = r.points[j];
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "        {\"threads\": %d, \"wall_ms\": %.4f, \"speedup\": %.3f}%s\n",
                    p.threads, p.wall_ms, p.speedup, j + 1 < r.points.size() ? "," : "");
      os << buf;
    }
    os << "      ]\n";
    os << "    }" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  std::ofstream f(path);
  f << os.str();
}

[[noreturn]] void usage_error(const std::string& detail) {
  std::cerr << "perf_trajectory: " << detail << "\n"
            << "usage: perf_trajectory [--out=FILE] [--threads=1,2,8] "
               "[--scale=tiny|full] [--reps=N] [--list]\n";
  std::exit(2);
}

int parse_positive_int(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos != text.size() || v < 1) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage_error(flag + " expects a positive integer, got '" + text + "'");
  }
}

Options parse(int argc, char** argv) {
  Options opt;
  bool reps_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      opt.out = arg.substr(6);
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads.clear();
      std::istringstream ss(arg.substr(10));
      std::string tok;
      while (std::getline(ss, tok, ','))
        opt.threads.push_back(parse_positive_int("--threads", tok));
    } else if (arg == "--scale=tiny") {
      opt.tiny = true;
    } else if (arg == "--scale=full") {
      opt.tiny = false;
    } else if (arg.rfind("--reps=", 0) == 0) {
      opt.reps = parse_positive_int("--reps", arg.substr(7));
      reps_set = true;
    } else if (arg == "--list") {
      opt.list = true;
    } else {
      usage_error("unknown argument: " + arg);
    }
  }
  if (opt.tiny && !reps_set) opt.reps = 2;
  if (opt.threads.empty()) opt.threads = {1};
  // threads=1 must come first: it is the speedup baseline.
  std::sort(opt.threads.begin(), opt.threads.end());
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  std::vector<Workload> workloads;
  workloads.push_back(make_sdd_solver(opt.tiny));
  workloads.push_back(make_unit_flow(opt.tiny));
  workloads.push_back(make_table1_mincostflow(opt.tiny));
  workloads.push_back(make_table1_reachability(opt.tiny));
  workloads.push_back(make_reduce(opt.tiny));
  workloads.push_back(make_scan(opt.tiny));
  workloads.push_back(make_pack(opt.tiny));
  workloads.push_back(make_sort(opt.tiny));
  workloads.push_back(make_spmv(opt.tiny));
  workloads.push_back(make_kernel_spmv(opt.tiny));
  workloads.push_back(make_kernel_fused_cg(opt.tiny));
  workloads.push_back(make_sdd_multi_rhs(opt.tiny));
  workloads.push_back(make_precond_reuse(opt.tiny));
  workloads.push_back(make_ipm_iterations(opt.tiny));
  workloads.push_back(make_engine_batch(opt.tiny));
  workloads.push_back(make_engine_deadline_shed(opt.tiny));
  workloads.push_back(make_certify_overhead(opt.tiny));
  workloads.push_back(make_preset_sweep(opt.tiny));
  workloads.push_back(make_engine_soak_poisson(opt.tiny));
  workloads.push_back(make_engine_soak_burst(opt.tiny));
  workloads.push_back(make_incremental_resolve(opt.tiny));
  workloads.push_back(make_instance_churn(opt.tiny));

  if (opt.list) {
    // One name per line, then the count — CI asserts the count so a workload
    // silently dropping out of the registration list above fails the build.
    for (const auto& w : workloads) std::cout << w.name << "\n";
    std::cout << "workloads: " << workloads.size() << "\n";
    return 0;
  }

  std::vector<WorkloadReport> reports;
  for (const auto& w : workloads) {
    std::cerr << "[perf_trajectory] " << w.name << " ..." << std::flush;
    reports.push_back(w.standalone ? w.standalone() : measure(w, opt));
    const auto& r = reports.back();
    std::cerr << " work=" << r.work << " depth=" << r.depth;
    for (const auto& p : r.points)
      std::cerr << "  t" << p.threads << "=" << p.wall_ms << "ms(x" << p.speedup << ")";
    std::cerr << "\n";
  }
  write_json(opt.out, opt, reports);
  std::cerr << "[perf_trajectory] wrote " << opt.out << "\n";
  return 0;
}
